open Helpers
module Fault = Casted_sim.Fault
module Rng = Casted_sim.Rng
module Montecarlo = Casted_sim.Montecarlo

let prop_flip_int_involution =
  qcheck "flipping a bit twice restores the value"
    QCheck2.Gen.(pair (map Int64.of_int int) (int_bound 63))
    (fun (v, bit) -> Fault.flip_int ~bit (Fault.flip_int ~bit v) = v)

let prop_flip_int_changes =
  qcheck "flipping a bit changes the value"
    QCheck2.Gen.(pair (map Int64.of_int int) (int_bound 63))
    (fun (v, bit) -> Fault.flip_int ~bit v <> v)

let prop_flip_float_changes_bits =
  qcheck "float flips change the representation"
    QCheck2.Gen.(pair (map Int64.float_of_bits (map Int64.of_int int)) (int_bound 63))
    (fun (v, bit) ->
      Int64.bits_of_float (Fault.flip_float ~bit v) <> Int64.bits_of_float v
      (* NaN payloads can collapse; tolerate that one case. *)
      || Float.is_nan v)

let prop_flip_burst_involution =
  qcheck "flipping a burst twice restores the value"
    QCheck2.Gen.(
      triple (map Int64.of_int int) (int_bound 63) (int_range 1 4))
    (fun (v, bit, width) ->
      Fault.flip_burst ~bit ~width (Fault.flip_burst ~bit ~width v) = v)

let test_population =
  {
    Fault.def_slots = 37;
    mem_accesses = 21;
    cond_branches = 13;
    xcluster_reads = 9;
  }

let test_random_fault_in_population () =
  let rng = Rng.create ~seed:1 in
  let in_pop name v limit =
    Alcotest.(check bool) (name ^ " in range") true (v >= 0 && v < limit)
  in
  for _ = 1 to 1000 do
    List.iter
      (fun model ->
        let f = Fault.random model rng ~population:test_population in
        Alcotest.(check bool) "model round-trips" true
          (Fault.model_of f = model);
        match f with
        | Fault.Reg_flip { target_slot; bit } ->
            in_pop "slot" target_slot test_population.Fault.def_slots;
            in_pop "bit" bit 64
        | Fault.Burst_flip { target_slot; bit; width } ->
            in_pop "slot" target_slot test_population.Fault.def_slots;
            in_pop "bit" bit 64;
            Alcotest.(check bool) "width 2-4" true (width >= 2 && width <= 4)
        | Fault.Mem_flip { target_access; offset; bit } ->
            in_pop "access" target_access test_population.Fault.mem_accesses;
            in_pop "offset" offset Fault.line_bytes;
            in_pop "bit" bit 8
        | Fault.Branch_flip { target_branch } ->
            in_pop "branch" target_branch test_population.Fault.cond_branches
        | Fault.Xcluster_flip { target_read; bit } ->
            in_pop "read" target_read test_population.Fault.xcluster_reads;
            in_pop "bit" bit 64)
      Fault.all_models
  done

let test_random_fault_empty_population () =
  let rng = Rng.create ~seed:2 in
  let empty = { test_population with Fault.xcluster_reads = 0 } in
  Alcotest.(check bool) "population_size sees the empty pool" true
    (Fault.population_size Fault.Xcluster empty = 0);
  match Fault.random Fault.Xcluster rng ~population:empty with
  | _ -> Alcotest.fail "expected Invalid_argument on an empty population"
  | exception Invalid_argument _ -> ()

let test_model_names_round_trip () =
  List.iter
    (fun m ->
      match Fault.model_of_string (Fault.model_name m) with
      | Some m' -> Alcotest.(check bool) (Fault.model_name m) true (m = m')
      | None -> Alcotest.failf "%s does not parse" (Fault.model_name m))
    Fault.all_models;
  Alcotest.(check bool) "aliases parse" true
    (Fault.model_of_string "mbu" = Some Fault.Burst
    && Fault.model_of_string "branch" = Some Fault.Control
    && Fault.model_of_string "comm" = Some Fault.Xcluster);
  Alcotest.(check bool) "junk rejected" true
    (Fault.model_of_string "gamma-ray" = None)

(* The printer reports the bits a burst actually flips. [flip_burst]
   wraps at bit 63 ([(bit + k) land 63]), so a burst starting near the
   top must print the wrapped positions — not phantom bits above 63. *)
let test_burst_pp_golden () =
  let pp f = Format.asprintf "%a" Fault.pp f in
  Alcotest.(check string) "interior burst" "burst@slot#3 bits 12..14"
    (pp (Fault.Burst_flip { target_slot = 3; bit = 12; width = 3 }));
  Alcotest.(check string) "single bit at the top" "burst@slot#0 bits 63..63"
    (pp (Fault.Burst_flip { target_slot = 0; bit = 63; width = 1 }));
  Alcotest.(check string) "wrapped burst"
    "burst@slot#7 bits 62..63,0..1 (wrapped)"
    (pp (Fault.Burst_flip { target_slot = 7; bit = 62; width = 4 }));
  Alcotest.(check string) "wrap by one"
    "burst@slot#1 bits 63..63,0..0 (wrapped)"
    (pp (Fault.Burst_flip { target_slot = 1; bit = 63; width = 2 }))

let prop_burst_pp_wraps_iff_mask_wraps =
  qcheck "pp says (wrapped) exactly when the burst mask wraps"
    QCheck2.Gen.(triple (int_bound 7) (int_bound 63) (int_range 1 4))
    (fun (slot, bit, width) ->
      let s =
        Format.asprintf "%a" Fault.pp
          (Fault.Burst_flip { target_slot = slot; bit; width })
      in
      contains s "(wrapped)" = (bit + width - 1 > 63))

let test_rng_deterministic () =
  let draw seed =
    let rng = Rng.create ~seed in
    List.init 20 (fun _ -> Rng.int rng 1000)
  in
  Alcotest.(check (list int)) "same seed, same stream" (draw 7) (draw 7);
  Alcotest.(check bool) "different seeds differ" true (draw 7 <> draw 8)

(* A protected straight-line program where every fault that matters hits
   a checked path: no silent corruption possible. *)
let protected_program () =
  program_of (fun b ->
      let base = B.movi b 0x100L in
      let acc = B.movi b 1L in
      B.counted_loop b ~from:0L ~until:20L (fun b i ->
          let x = B.mul b acc acc in
          let y = B.add b x i in
          let (_ : Reg.t) = B.andi b ~dst:acc y 0xFFFFL in
          ());
      B.st b Opcode.W8 ~value:acc ~base 0L;
      let out = B.movi b 0x40L in
      let v = B.ld b Opcode.W8 base 0L in
      B.st b Opcode.W8 ~value:v ~base:out 0L)

let test_injection_changes_something () =
  let p = protected_program () in
  let c = Pipeline.compile ~scheme:Scheme.Noed ~issue_width:2 ~delay:1 p in
  let golden = Simulator.run c.Pipeline.schedule in
  (* Inject into every def of a NOED run: outcomes must be benign or
     corrupt or exception, never detected (no checks exist). *)
  let distinct = ref 0 in
  for def = 0 to golden.Outcome.dyn_defs - 1 do
    let fault = Fault.Reg_flip { target_slot = def; bit = 1 } in
    let r =
      Simulator.run ~fault ~fuel:(20 * golden.Outcome.dyn_insns)
        c.Pipeline.schedule
    in
    (match r.Outcome.termination with
    | Outcome.Detected _ -> Alcotest.fail "NOED cannot detect"
    | _ -> ());
    if not (String.equal r.Outcome.output golden.Outcome.output) then
      incr distinct
  done;
  Alcotest.(check bool) "some faults corrupt the output" true (!distinct > 0)

let test_hardened_run_has_no_sdc () =
  (* Exhaustively inject bit 3 into every defining instruction of the
     fully protected program under CASTED: no run may silently corrupt
     the output. *)
  let p = protected_program () in
  let c = Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 p in
  let golden = Simulator.run c.Pipeline.schedule in
  for def = 0 to golden.Outcome.dyn_defs - 1 do
    List.iter
      (fun bit ->
        let fault = Fault.Reg_flip { target_slot = def; bit } in
        let r =
          Simulator.run ~fault ~fuel:(20 * golden.Outcome.dyn_insns)
            c.Pipeline.schedule
        in
        match Montecarlo.classify ~golden r with
        | Montecarlo.Data_corrupt ->
            Alcotest.failf "silent corruption at def %d bit %d" def bit
        | Montecarlo.Benign | Montecarlo.Detected | Montecarlo.Exception
        | Montecarlo.Timeout | Montecarlo.Recovered ->
            ())
      [ 0; 31; 63 ]
  done

let test_fault_determinism () =
  let p = protected_program () in
  let c = Pipeline.compile ~scheme:Scheme.Sced ~issue_width:2 ~delay:1 p in
  List.iter
    (fun fault ->
      let r1 = Simulator.run ~fault c.Pipeline.schedule in
      let r2 = Simulator.run ~fault c.Pipeline.schedule in
      Alcotest.(check bool) "same termination" true
        (r1.Outcome.termination = r2.Outcome.termination);
      Alcotest.(check string) "same output" r1.Outcome.output
        r2.Outcome.output)
    [
      Fault.Reg_flip { target_slot = 17; bit = 9 };
      Fault.Burst_flip { target_slot = 17; bit = 60; width = 4 };
      Fault.Mem_flip { target_access = 3; offset = 11; bit = 5 };
      Fault.Branch_flip { target_branch = 2 };
    ]

let test_classification_rules () =
  let golden =
    {
      Outcome.termination = Outcome.Exit 0;
      cycles = 10;
      dyn_insns = 10;
      dyn_defs = 5;
      dyn_mem = 2;
      dyn_branches = 1;
      dyn_xreads = 0;
      dyn_checks = 0;
      dyn_corrections = 0;
      dyn_by_role = [| 10; 0; 0; 0 |];
      slots_total = 40;
      output = "abcd";
      exit_code = 0;
      cache =
        {
          Casted_cache.Hierarchy.l1_hits = 0;
          l1_misses = 0;
          l2_hits = 0;
          l2_misses = 0;
          l3_hits = 0;
          l3_misses = 0;
          writebacks = 0;
        };
      mem_digest = "";
    }
  in
  let with_term ?(output = "abcd") ?(exit_code = 0) termination =
    { golden with Outcome.termination; output; exit_code }
  in
  let check name expected run =
    Alcotest.(check string) name
      (Montecarlo.class_name expected)
      (Montecarlo.class_name (Montecarlo.classify ~golden run))
  in
  check "same output is benign" Montecarlo.Benign (with_term (Outcome.Exit 0));
  check "different output is corrupt" Montecarlo.Data_corrupt
    (with_term ~output:"abXd" (Outcome.Exit 0));
  check "different exit code is corrupt" Montecarlo.Data_corrupt
    (with_term ~exit_code:3 (Outcome.Exit 3));
  check "detected" Montecarlo.Detected (with_term (Outcome.Detected 5));
  check "trap is exception" Montecarlo.Exception
    (with_term (Outcome.Trapped Casted_sim.Trap.Div_by_zero));
  check "timeout" Montecarlo.Timeout (with_term Outcome.Timeout)

let suite =
  ( "fault",
    [
      prop_flip_int_involution;
      prop_flip_int_changes;
      prop_flip_burst_involution;
      prop_flip_float_changes_bits;
      case "random faults stay in the population"
        test_random_fault_in_population;
      case "empty population is rejected" test_random_fault_empty_population;
      case "model names round-trip" test_model_names_round_trip;
      case "burst printer golden strings" test_burst_pp_golden;
      prop_burst_pp_wraps_iff_mask_wraps;
      case "rng is deterministic" test_rng_deterministic;
      case "NOED faults corrupt, never detect" test_injection_changes_something;
      case "hardened program has no silent corruption"
        test_hardened_run_has_no_sdc;
      case "fault runs are deterministic" test_fault_determinism;
      case "classification rules" test_classification_rules;
    ] )
