(* Golden-outcome regression suite: the simulator must reproduce the
   committed fixture (test/golden_fixture.ml) bit for bit.

   The fixture was generated before the pre-decoded interpreter core
   landed, so these tests are the proof that decoding is a pure
   performance transformation: every cycle count, every dynamic counter
   an injection campaign sizes its population from, the exit code and
   the output bytes are compared against frozen values. A failure here
   means the simulator's semantics or timing changed — see
   tools/gen_golden for the (intentional-change-only) regeneration
   procedure. *)

module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Simulator = Casted_sim.Simulator
module Decode = Casted_sim.Decode
module Outcome = Casted_sim.Outcome

let scheme_of_name name =
  match List.find_opt (fun s -> String.equal (Scheme.name s) name) Scheme.all with
  | Some s -> s
  | None -> Alcotest.failf "fixture names unknown scheme %S" name

let run_entry (e : Golden_fixture.entry) =
  let w =
    match Registry.find e.Golden_fixture.workload with
    | Some w -> w
    | None -> Alcotest.failf "fixture names unknown workload %S" e.workload
  in
  let program = w.W.build W.Fault in
  let compiled =
    Pipeline.compile
      ~scheme:(scheme_of_name e.Golden_fixture.scheme)
      ~issue_width:e.Golden_fixture.issue ~delay:e.Golden_fixture.delay
      program
  in
  Simulator.run_decoded (Decode.of_schedule compiled.Pipeline.schedule)

let check_entry (e : Golden_fixture.entry) () =
  let r = run_entry e in
  let ck what = Alcotest.(check int) what in
  ck "cycles" e.Golden_fixture.cycles r.Outcome.cycles;
  ck "dyn_insns" e.Golden_fixture.dyn_insns r.Outcome.dyn_insns;
  ck "dyn_defs" e.Golden_fixture.dyn_defs r.Outcome.dyn_defs;
  ck "dyn_mem" e.Golden_fixture.dyn_mem r.Outcome.dyn_mem;
  ck "dyn_branches" e.Golden_fixture.dyn_branches r.Outcome.dyn_branches;
  ck "dyn_xreads" e.Golden_fixture.dyn_xreads r.Outcome.dyn_xreads;
  ck "dyn_checks" e.Golden_fixture.dyn_checks r.Outcome.dyn_checks;
  ck "exit_code" e.Golden_fixture.exit_code r.Outcome.exit_code;
  Alcotest.(check string)
    "output md5" e.Golden_fixture.output_md5
    (Digest.to_hex (Digest.string r.Outcome.output))

(* Also pin that the convenience entry point is literally the decoded
   path: run and run_decoded-of-decode agree on a fixture entry. *)
let test_run_matches_run_decoded () =
  match Golden_fixture.entries with
  | [] -> Alcotest.fail "empty golden fixture"
  | e :: _ ->
      let w = Option.get (Registry.find e.Golden_fixture.workload) in
      let program = w.W.build W.Fault in
      let compiled =
        Pipeline.compile
          ~scheme:(scheme_of_name e.Golden_fixture.scheme)
          ~issue_width:e.Golden_fixture.issue ~delay:e.Golden_fixture.delay
          program
      in
      let sched = compiled.Pipeline.schedule in
      let a = Simulator.run sched in
      let b = Simulator.run_decoded (Decode.of_schedule sched) in
      Alcotest.(check bool) "identical outcomes" true (a = b)

(* The replay path must land on the same frozen fixture: capture a
   snapshot set on each entry and check that resuming from the LAST
   snapshot (the most state restored, the least re-executed) still
   reproduces every pinned field. *)
let check_entry_replayed (e : Golden_fixture.entry) () =
  let w = Option.get (Registry.find e.Golden_fixture.workload) in
  let program = w.W.build W.Fault in
  let compiled =
    Pipeline.compile
      ~scheme:(scheme_of_name e.Golden_fixture.scheme)
      ~issue_width:e.Golden_fixture.issue ~delay:e.Golden_fixture.delay
      program
  in
  let d = Decode.of_schedule compiled.Pipeline.schedule in
  let capture = Casted_sim.Replay.capture ~init_stride:64 ~target:16 d in
  let snaps = Casted_sim.Replay.snapshots capture in
  if Array.length snaps = 0 then
    Alcotest.failf "no snapshots captured for %s" e.Golden_fixture.workload;
  let r =
    Simulator.run_replayed ~snapshot:snaps.(Array.length snaps - 1) d
  in
  let ck what = Alcotest.(check int) what in
  ck "cycles" e.Golden_fixture.cycles r.Outcome.cycles;
  ck "dyn_insns" e.Golden_fixture.dyn_insns r.Outcome.dyn_insns;
  ck "dyn_defs" e.Golden_fixture.dyn_defs r.Outcome.dyn_defs;
  ck "dyn_mem" e.Golden_fixture.dyn_mem r.Outcome.dyn_mem;
  ck "dyn_branches" e.Golden_fixture.dyn_branches r.Outcome.dyn_branches;
  ck "dyn_xreads" e.Golden_fixture.dyn_xreads r.Outcome.dyn_xreads;
  ck "dyn_checks" e.Golden_fixture.dyn_checks r.Outcome.dyn_checks;
  ck "exit_code" e.Golden_fixture.exit_code r.Outcome.exit_code;
  Alcotest.(check string)
    "output md5" e.Golden_fixture.output_md5
    (Digest.to_hex (Digest.string r.Outcome.output))

let suite =
  let case e =
    Alcotest.test_case
      (Printf.sprintf "%s %s issue=%d delay=%d" e.Golden_fixture.workload
         e.Golden_fixture.scheme e.Golden_fixture.issue
         e.Golden_fixture.delay)
      `Quick (check_entry e)
  in
  let replay_case e =
    Alcotest.test_case
      (Printf.sprintf "replayed: %s %s issue=%d delay=%d"
         e.Golden_fixture.workload e.Golden_fixture.scheme
         e.Golden_fixture.issue e.Golden_fixture.delay)
      `Quick
      (check_entry_replayed e)
  in
  ( "golden",
    (Alcotest.test_case "run = run_decoded . decode" `Quick
       test_run_matches_run_decoded
    :: List.map case Golden_fixture.entries)
    @ List.map replay_case Golden_fixture.entries )
