open Helpers
module Json = Casted_obs.Json
module Metrics = Casted_obs.Metrics
module Trace = Casted_obs.Trace
module Pool = Casted_exec.Pool
module Montecarlo = Casted_sim.Montecarlo

(* Every test that enables collection turns it back off and clears the
   global registries, so the rest of the suite runs unobserved. *)
let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())

let with_trace f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())

(* --- JSON writer / parser --- *)

let test_json_escaping () =
  Alcotest.(check string)
    "control chars, quote, backslash"
    "\"a\\\"b\\\\c\\nd\\te\\u0001f\""
    (Json.to_string (Json.String "a\"b\\c\nd\te\x01f"));
  Alcotest.(check string)
    "utf-8 passthrough" "\"h\xc3\xa9llo \xe2\x98\x83\""
    (Json.to_string (Json.String "h\xc3\xa9llo \xe2\x98\x83"));
  Alcotest.(check string)
    "non-finite floats become null" "[null,null,null]"
    (Json.to_string
       (Json.List [ Json.Float nan; Json.Float infinity; Json.Float neg_infinity ]))

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("ints", Json.List [ Json.Int 0; Json.Int (-42); Json.Int max_int ]);
        ("floats", Json.List [ Json.Float 0.1; Json.Float 1.5; Json.Float (-3.25e-4) ]);
        ("text", Json.String "h\xc3\xa9llo\n\"quoted\"\t\x00end");
        ("nested", Json.Obj [ ("deep", Json.List [ Json.Obj [ ("k", Json.Int 1) ] ]) ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "round-trips exactly" true (doc = doc')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parser_features () =
  (match Json.parse "  {\"s\": \"\\ud83d\\ude00\"} " with
  | Ok j ->
      Alcotest.(check bool)
        "surrogate pair decodes to U+1F600" true
        (Json.member "s" j = Some (Json.String "\xf0\x9f\x98\x80"))
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ "tru"; "{"; "[1,]"; "1 2"; "\"\\x\""; "" ]

let prop_json_string_round_trip =
  qcheck "arbitrary byte strings round-trip through the writer"
    QCheck2.Gen.string
    (fun s ->
      match Json.parse (Json.to_string (Json.String s)) with
      | Ok (Json.String s') -> String.equal s s'
      | _ -> false)

(* --- span tracing --- *)

let test_span_nesting () =
  with_trace (fun () ->
      let r =
        Trace.with_span "outer" (fun () ->
            Trace.with_span ~cat:"unit" "inner" (fun () -> 7))
      in
      Alcotest.(check int) "body result returned" 7 r;
      match Trace.events () with
      | [ outer; inner ] ->
          Alcotest.(check string) "outer first" "outer" outer.Trace.name;
          Alcotest.(check string) "inner second" "inner" inner.Trace.name;
          Alcotest.(check bool) "inner contained in outer" true
            (inner.Trace.ts_us >= outer.Trace.ts_us
            && inner.Trace.ts_us +. inner.Trace.dur_us
               <= outer.Trace.ts_us +. outer.Trace.dur_us);
          Alcotest.(check bool) "durations non-negative" true
            (outer.Trace.dur_us >= 0.0 && inner.Trace.dur_us >= 0.0)
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_span_records_on_raise () =
  with_trace (fun () ->
      (try Trace.with_span "doomed" (fun () -> failwith "boom") with
      | Failure _ -> ());
      match Trace.events () with
      | [ e ] -> Alcotest.(check string) "span survives raise" "doomed" e.Trace.name
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let test_negative_duration_rejected () =
  with_trace (fun () ->
      match Trace.add_complete ~ts_us:10.0 ~dur_us:(-1.0) "bad" with
      | () -> Alcotest.fail "negative duration accepted"
      | exception Invalid_argument _ -> ())

let test_chrome_trace_valid () =
  with_trace (fun () ->
      Trace.name_track "test-main";
      Trace.with_span ~args:[ ("k", Json.Int 3) ] "alpha" (fun () ->
          Trace.with_span "beta" ignore);
      let doc = Trace.to_chrome () in
      (* The export must itself be parseable JSON... *)
      let parsed =
        match Json.parse (Json.to_string doc) with
        | Ok j -> j
        | Error e -> Alcotest.failf "chrome trace is not valid JSON: %s" e
      in
      (* ...and structurally a Chrome trace_event document. *)
      match Json.member "traceEvents" parsed with
      | Some (Json.List events) ->
          Alcotest.(check bool) "has events" true (List.length events >= 3);
          List.iter
            (fun ev ->
              let has k = Json.member k ev <> None in
              Alcotest.(check bool) "event has name/ph/pid/tid" true
                (has "name" && has "ph" && has "pid" && has "tid");
              match Json.member "ph" ev with
              | Some (Json.String "X") ->
                  Alcotest.(check bool) "X event has ts and dur" true
                    (has "ts" && has "dur")
              | Some (Json.String "M") -> ()
              | _ -> Alcotest.fail "unexpected event phase")
            events
      | _ -> Alcotest.fail "no traceEvents array")

(* --- metrics --- *)

let test_metrics_kinds () =
  with_metrics (fun () ->
      Metrics.incr "t.counter";
      Metrics.incr ~by:4 "t.counter";
      Metrics.gauge "t.gauge" 2.0;
      Metrics.gauge "t.gauge" 7.0;
      Metrics.gauge "t.gauge" 3.0;
      Metrics.observe "t.hist" 1.0;
      Metrics.observe "t.hist" 3.0;
      let snap = Metrics.snapshot () in
      Alcotest.(check bool) "counter sums" true
        (List.assoc "t.counter" snap = Metrics.Counter 5);
      Alcotest.(check bool) "gauge keeps high-water + samples" true
        (List.assoc "t.gauge" snap = Metrics.Gauge { high = 7.0; samples = 3 });
      (match List.assoc "t.hist" snap with
      | Metrics.Histogram { count = 2; sum; min = 1.0; max = 3.0 } ->
          Alcotest.(check (float 1e-9)) "sum" 4.0 sum
      | _ -> Alcotest.fail "histogram shape");
      (* A name reused with a different kind is a programming error. *)
      match Metrics.gauge "t.counter" 1.0 with
      | () -> Alcotest.fail "kind conflict accepted"
      | exception Invalid_argument _ -> ())

(* A small looped program with stores: enough dynamic events for every
   fault model's population to be non-trivial. *)
let looped_program () =
  program_of (fun b ->
      let base = B.movi b 0x100L in
      let acc = B.movi b 1L in
      B.counted_loop b ~from:0L ~until:16L (fun b i ->
          let x = B.mul b acc acc in
          let y = B.add b x i in
          let (_ : Casted_ir.Reg.t) = B.andi b ~dst:acc y 0xFFFFL in
          ());
      B.st b Opcode.W8 ~value:acc ~base 0L;
      let out = B.movi b 0x40L in
      let v = B.ld b Opcode.W8 base 0L in
      B.st b Opcode.W8 ~value:v ~base:out 0L)

(* The determinism contract of the whole subsystem: a campaign tally is
   bit-identical with metrics off, with metrics on, and at any pool
   size; and the deterministic (simulation-derived) metrics themselves
   merge to the same view at jobs=1 and jobs=4. *)
let test_metrics_campaign_determinism () =
  let p = looped_program () in
  let c = Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 p in
  let campaign ?pool () =
    Montecarlo.run ?pool ~seed:11 ~trials:64 c.Pipeline.schedule
  in
  let deterministic snap =
    (* pool.* metrics (queue depth, task spans) depend on scheduling;
       everything derived from the trials themselves must not. *)
    List.filter
      (fun (name, v) ->
        (match v with Metrics.Counter _ -> true | _ -> false)
        && (String.length name >= 3 && String.sub name 0 3 = "sim."
           || String.length name >= 3 && String.sub name 0 3 = "mc."))
      snap
  in
  let baseline = campaign () in
  let r1, snap1 =
    with_metrics (fun () ->
        let r = campaign () in
        (r, deterministic (Metrics.snapshot ())))
  in
  let r4, snap4 =
    with_metrics (fun () ->
        let r =
          Pool.with_pool ~jobs:4 (fun pool -> campaign ~pool ())
        in
        (r, deterministic (Metrics.snapshot ())))
  in
  Alcotest.(check bool) "metrics do not perturb the tally" true (baseline = r1);
  Alcotest.(check bool) "jobs=4 tally identical" true (baseline = r4);
  Alcotest.(check bool) "some sim metrics recorded" true (snap1 <> []);
  Alcotest.(check bool) "merged metrics identical at jobs=1 and jobs=4" true
    (snap1 = snap4)

let test_tracing_does_not_perturb () =
  let p = looped_program () in
  let c = Pipeline.compile ~scheme:Scheme.Sced ~issue_width:2 ~delay:1 p in
  let plain = Simulator.run c.Pipeline.schedule in
  let traced =
    with_trace (fun () ->
        Trace.with_span "wrapper" (fun () -> Simulator.run c.Pipeline.schedule))
  in
  Alcotest.(check bool) "same termination" true
    (plain.Outcome.termination = traced.Outcome.termination);
  Alcotest.(check string) "same output" plain.Outcome.output
    traced.Outcome.output;
  Alcotest.(check int) "same cycles" plain.Outcome.cycles traced.Outcome.cycles

let suite =
  ( "obs",
    [
      case "json escaping" test_json_escaping;
      case "json round-trip" test_json_round_trip;
      case "json parser features" test_json_parser_features;
      prop_json_string_round_trip;
      case "span nesting" test_span_nesting;
      case "span recorded on raise" test_span_records_on_raise;
      case "negative span duration rejected" test_negative_duration_rejected;
      case "chrome trace export is valid" test_chrome_trace_valid;
      case "metric kinds and merge" test_metrics_kinds;
      case "campaign determinism with metrics, jobs=1 vs jobs=4"
        test_metrics_campaign_determinism;
      case "tracing does not perturb a run" test_tracing_does_not_perturb;
    ] )
