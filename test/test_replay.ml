(* Golden-prefix replay: the whole point of the snapshotable state
   layer is that a trial restored from a snapshot is bit-identical to
   the same trial executed full-length — for every fault model, every
   snapshot stride, and every pool size. These tests pin that, plus the
   [Replay.find] search contract and the legacy-checkpoint gate. *)

open Helpers
module Fault = Casted_sim.Fault
module Rng = Casted_sim.Rng
module Montecarlo = Casted_sim.Montecarlo
module Checkpoint = Casted_sim.Checkpoint
module Decode = Casted_sim.Decode
module Replay = Casted_sim.Replay
module State = Casted_sim.State
module Pool = Casted_exec.Pool

(* Same shape as the campaign tests' kernel: loads, stores and
   conditional branches so every fault model has a non-empty population
   under CASTED (dual cluster: cross-cluster reads exist too). *)
let kernel () =
  program_of (fun b ->
      let base = B.movi b 0x100L in
      let acc = B.movi b 1L in
      B.counted_loop b ~from:0L ~until:12L (fun b i ->
          let x = B.mul b acc acc in
          let y = B.add b x i in
          let (_ : Reg.t) = B.andi b ~dst:acc y 0xFFFFL in
          B.st b Opcode.W8 ~value:acc ~base 0L);
      let out = B.movi b 0x40L in
      let v = B.ld b Opcode.W8 base 0L in
      B.st b Opcode.W8 ~value:v ~base:out 0L)

let schedule () =
  let c =
    Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 (kernel ())
  in
  c.Pipeline.schedule

let decoded () = Decode.of_schedule (schedule ())

let same_counts msg (a : Montecarlo.result) (b : Montecarlo.result) =
  let ck field = Alcotest.(check int) (msg ^ ": " ^ field) in
  ck "trials" a.Montecarlo.trials b.Montecarlo.trials;
  ck "benign" a.Montecarlo.benign b.Montecarlo.benign;
  ck "detected" a.Montecarlo.detected b.Montecarlo.detected;
  ck "exceptions" a.Montecarlo.exceptions b.Montecarlo.exceptions;
  ck "corrupt" a.Montecarlo.corrupt b.Montecarlo.corrupt;
  ck "timeouts" a.Montecarlo.timeouts b.Montecarlo.timeouts

(* The capture pass's golden run is bit-identical to a plain decoded
   run: the snapshot hook only copies state. *)
let test_capture_golden_identical () =
  let d = decoded () in
  let plain = Simulator.run_decoded d in
  let r = Replay.capture ~init_stride:4 ~target:8 d in
  Alcotest.(check bool) "snapshots captured" true (Replay.count r > 0);
  Alcotest.(check bool) "golden identical" true (Replay.golden r = plain)

(* The core property: for every fault model and several snapshot
   strides, a trial replayed from the snapshot [Replay.find] picks is
   field-for-field identical (cycles, every counter, output, memory
   digest, cache stats) to the same fault executed from scratch. *)
let test_trials_bit_identical () =
  let d = decoded () in
  let g = Montecarlo.golden_decoded d in
  let fuel = g.Montecarlo.fuel in
  let captures =
    List.map
      (fun (init_stride, target) -> Replay.capture ~init_stride ~target d)
      [ (1, 4); (4, 16); (32, 64) ]
  in
  let replayed_total = ref 0 in
  List.iter
    (fun model ->
      if Fault.population_size model g.Montecarlo.pop > 0 then
        for index = 0 to 39 do
          let rng = Rng.create ~seed:(Rng.derive ~seed:7 index) in
          let fault = Fault.random model rng ~population:g.Montecarlo.pop in
          let full =
            Simulator.run_decoded ~fault ~fuel ~with_mem_digest:true d
          in
          List.iter
            (fun r ->
              match Replay.find r fault with
              | None -> ()
              | Some snapshot ->
                  incr replayed_total;
                  let replayed =
                    Simulator.run_replayed ~fault ~fuel ~with_mem_digest:true
                      ~snapshot d
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s trial %d: replayed = full"
                       (Fault.model_name model) index)
                    true (replayed = full))
            captures
        done)
    Fault.all_models;
  Alcotest.(check bool) "replay path exercised" true (!replayed_total > 100)

(* Campaign invariance: replay on, replay off, sequential and pooled
   all land on the same tally, for every fault model. *)
let test_campaign_replay_invariant () =
  let sched = schedule () in
  List.iter
    (fun model ->
      let run ?pool ~replay () =
        Montecarlo.run ?pool ~seed:42 ~model ~trials:128 ~replay sched
      in
      let off = run ~replay:false () in
      let on_seq = run ~replay:true () in
      let name = Fault.model_name model in
      same_counts (name ^ ": replay on vs off") off on_seq;
      Alcotest.(check bool)
        (name ^ ": off reports no replay stats")
        true (off.Montecarlo.replay = None);
      (match on_seq.Montecarlo.replay with
      | None -> Alcotest.fail (name ^ ": replay stats missing")
      | Some s ->
          Alcotest.(check int)
            (name ^ ": every trial accounted")
            128
            (s.Montecarlo.replayed + s.Montecarlo.full_runs);
          Alcotest.(check bool)
            (name ^ ": mean suffix within [0,1]")
            true
            (s.Montecarlo.mean_suffix >= 0.0 && s.Montecarlo.mean_suffix <= 1.0));
      Pool.with_pool ~jobs:4 (fun pool ->
          same_counts
            (name ^ ": replay pooled vs sequential full")
            off
            (run ~pool ~replay:true ())))
    Fault.all_models

(* [Replay.find] returns the latest snapshot whose armed counter is
   still at or below the fault's target — and None only when even the
   first one is past it. *)
let test_find_latest_valid () =
  let d = decoded () in
  let r = Replay.capture ~init_stride:1 ~target:16 d in
  let snaps = Replay.snapshots r in
  Alcotest.(check bool) "dense capture" true (Array.length snaps > 2);
  Array.iteri
    (fun i s ->
      if i > 0 then
        Alcotest.(check bool) "defs counter nondecreasing" true
          (snaps.(i - 1).State.s_defs <= s.State.s_defs))
    snaps;
  let max_defs = snaps.(Array.length snaps - 1).State.s_defs in
  for target_slot = 0 to max_defs + 2 do
    let fault = Fault.Reg_flip { target_slot; bit = 0 } in
    match Replay.find r fault with
    | None ->
        Alcotest.(check bool) "none only before first snapshot" true
          (snaps.(0).State.s_defs > target_slot)
    | Some s ->
        Alcotest.(check bool) "chosen snapshot valid" true
          (s.State.s_defs <= target_slot);
        Array.iter
          (fun s' ->
            if s'.State.s_dyn > s.State.s_dyn then
              Alcotest.(check bool) "no later valid snapshot" true
                (s'.State.s_defs > target_slot))
          snaps
  done

(* Checkpoint files predating the identity field are refused unless the
   caller explicitly opts in — nothing ties them to the campaign. *)
let test_legacy_checkpoint_gate () =
  let path = Filename.temp_file "casted_legacy" ".ckpt" in
  Checkpoint.save ~path
    {
      Checkpoint.seed = 9;
      fuel_factor = 10;
      model = Fault.Reg_bit;
      trials = 64;
      next_index = 32;
      counts = [| 10; 15; 4; 2; 1 |];
      identity = "kernel/CASTED/i2/d2";
    };
  (* Rewrite the file without its identity line: the legacy format. *)
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let legacy =
    List.rev !lines
    |> List.filter (fun l -> not (String.starts_with ~prefix:"identity=" l))
  in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) legacy;
  close_out oc;
  (match Checkpoint.load ~path () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "identity-less checkpoint loaded without opt-in");
  (match Checkpoint.load ~allow_legacy:true ~path () with
  | Ok (Some t) ->
      Alcotest.(check string) "legacy identity is empty" "" t.Checkpoint.identity;
      Alcotest.(check int) "counts survive" 15 t.Checkpoint.counts.(1);
      Alcotest.(check int) "index survives" 32 t.Checkpoint.next_index
  | Ok None -> Alcotest.fail "legacy checkpoint not found"
  | Error e -> Alcotest.failf "legacy checkpoint refused despite opt-in: %s" e);
  Sys.remove path

let suite =
  ( "replay",
    [
      Alcotest.test_case "capture golden = plain run" `Quick
        test_capture_golden_identical;
      Alcotest.test_case "all models/strides: replayed = full" `Slow
        test_trials_bit_identical;
      Alcotest.test_case "campaigns: replay/pool invariant" `Slow
        test_campaign_replay_invariant;
      Alcotest.test_case "find picks latest valid snapshot" `Quick
        test_find_latest_valid;
      Alcotest.test_case "legacy checkpoint gated" `Quick
        test_legacy_checkpoint_gate;
    ] )
