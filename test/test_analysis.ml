open Helpers
module Pressure = Casted_ir.Pressure
module Profile = Casted_sim.Profile
module Utilization = Casted_report.Utilization
module Transform = Casted_detect.Transform
module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry

(* --- register pressure --- *)

let test_pressure_straight_line () =
  (* Three values alive simultaneously at their join. *)
  let p =
    compute_program (fun b ->
        let x = B.movi b 1L in
        let y = B.movi b 2L in
        let z = B.movi b 3L in
        let s = B.add b x y in
        B.add b s z)
  in
  let pr = Pressure.of_program p in
  Alcotest.(check bool) "at least 3 gp at peak" true (pr.Pressure.max_gp >= 3);
  Alcotest.(check int) "no fp" 0 pr.Pressure.max_fp

let test_pressure_grows_with_hardening () =
  (* Duplication roughly doubles the live set. *)
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let p = w.W.build W.Fault in
      let plain = Pressure.of_program p in
      let hardened, _ = Transform.program Options.default p in
      let det = Pressure.of_program hardened in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d -> %d gp" name plain.Pressure.max_gp
           det.Pressure.max_gp)
        true
        (det.Pressure.max_gp > plain.Pressure.max_gp
        && det.Pressure.max_gp <= (2 * plain.Pressure.max_gp) + 4))
    [ "cjpeg"; "181.mcf" ]

let test_pressure_exceeds () =
  let t = { Pressure.max_gp = 70; max_fp = 10; max_pr = 5 } in
  Alcotest.(check bool) "spills on 64" true
    (Pressure.exceeds t ~gp:64 ~fp:64 ~pr:32);
  Alcotest.(check bool) "fits on 128" false
    (Pressure.exceeds t ~gp:128 ~fp:64 ~pr:32)

(* --- profiling --- *)

let test_profile_counts_visits () =
  let p =
    program_of (fun b ->
        B.counted_loop b ~name:"hot" ~from:0L ~until:37L (fun b _ ->
            ignore (B.movi b 1L)))
  in
  let c = Pipeline.compile ~scheme:Scheme.Noed ~issue_width:2 ~delay:1 p in
  let profile = Profile.create () in
  let r = Simulator.run ~profile c.Pipeline.schedule in
  let body =
    List.find_opt
      (fun ((_, label), _) ->
        String.length label >= 8 && String.sub label 0 8 = "hot_body")
      (Profile.entries profile)
  in
  (match body with
  | Some (_, e) -> Alcotest.(check int) "37 visits" 37 e.Profile.visits
  | None -> Alcotest.fail "loop body not profiled");
  (* Inclusive cycles sum to (roughly) the run's cycle count: every
     executed block is attributed. *)
  Alcotest.(check bool) "cycles accounted" true
    (Profile.total_cycles profile <= r.Outcome.cycles
    && Profile.total_cycles profile > r.Outcome.cycles / 2)

let test_profile_render () =
  let p = (Option.get (Registry.find "h263enc")).W.build W.Fault in
  let c = Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 p in
  let profile = Profile.create () in
  let (_ : Outcome.run) = Simulator.run ~profile c.Pipeline.schedule in
  let s = Profile.render_top ~n:5 profile in
  Alcotest.(check bool) "renders rows" true
    (List.length (String.split_on_char '\n' s) >= 5)

(* --- placement / utilisation --- *)

let test_dced_pins_detection_remotely () =
  let p = (Option.get (Registry.find "cjpeg")).W.build W.Fault in
  let c = Pipeline.compile ~scheme:Scheme.Dced ~issue_width:2 ~delay:2 p in
  let u = Utilization.analyze c.Pipeline.schedule in
  Alcotest.(check (float 1e-9)) "all detection remote" 1.0
    (Utilization.detection_remote_fraction u);
  Alcotest.(check (float 1e-9)) "no original remote" 0.0
    (Utilization.original_remote_fraction u)

let test_casted_balances () =
  let p = (Option.get (Registry.find "cjpeg")).W.build W.Fault in
  let c = Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:1 p in
  let u = Utilization.analyze c.Pipeline.schedule in
  let det = Utilization.detection_remote_fraction u in
  let orig = Utilization.original_remote_fraction u in
  (* Neither all-local nor all-remote: genuinely adaptive. *)
  Alcotest.(check bool) "detection split" true (det > 0.1 && det < 0.9);
  Alcotest.(check bool) "original code split too (SS IV-B6)" true
    (orig > 0.05)

let test_single_cluster_utilization () =
  let p = (Option.get (Registry.find "cjpeg")).W.build W.Fault in
  let c = Pipeline.compile ~scheme:Scheme.Sced ~issue_width:2 ~delay:1 p in
  let u = Utilization.analyze c.Pipeline.schedule in
  Alcotest.(check int) "one cluster" 1 (Array.length u.Utilization.insns_per_cluster);
  Alcotest.(check (float 1e-9)) "nothing remote" 0.0
    (Utilization.detection_remote_fraction u);
  (* Occupancy now comes from the simulator's slot counters (the single
     source of truth), not from a parallel static accounting. *)
  let run = Simulator.run c.Pipeline.schedule in
  let occ = Utilization.occupancy_of_run run in
  Alcotest.(check bool) "occupancy in (0,1]" true (occ > 0.0 && occ <= 1.0);
  Alcotest.(check int) "slots offered = cycles x clusters x width"
    (run.Outcome.cycles * 1 * 2)
    run.Outcome.slots_total

let suite =
  ( "analysis",
    [
      case "pressure on straight-line code" test_pressure_straight_line;
      case "hardening roughly doubles pressure"
        test_pressure_grows_with_hardening;
      case "pressure spill predicate" test_pressure_exceeds;
      case "profile counts loop visits" test_profile_counts_visits;
      case "profile rendering" test_profile_render;
      case "DCED pins detection code remotely" test_dced_pins_detection_remotely;
      case "CASTED balances both streams" test_casted_balances;
      case "single-cluster utilisation" test_single_cluster_utilization;
    ] )
