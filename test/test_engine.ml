(* The experiment engine: domain pool, schedule cache, deterministic
   parallel campaigns. *)

open Helpers
module Pool = Casted_exec.Pool
module Engine = Casted_engine.Engine
module Cache = Casted_engine.Cache
module Montecarlo = Casted_sim.Montecarlo
module Workload = Casted_workloads.Workload

let spec =
  Cache.key ~workload:"cjpeg" ~size:Workload.Fault ~scheme:Scheme.Casted
    ~issue_width:2 ~delay:2 ()

let check_result = Alcotest.(check int)

let same_result msg (a : Montecarlo.result) (b : Montecarlo.result) =
  check_result (msg ^ ": trials") a.Montecarlo.trials b.Montecarlo.trials;
  check_result (msg ^ ": benign") a.Montecarlo.benign b.Montecarlo.benign;
  check_result (msg ^ ": detected") a.Montecarlo.detected b.Montecarlo.detected;
  check_result (msg ^ ": exceptions") a.Montecarlo.exceptions
    b.Montecarlo.exceptions;
  check_result (msg ^ ": corrupt") a.Montecarlo.corrupt b.Montecarlo.corrupt;
  check_result (msg ^ ": timeouts") a.Montecarlo.timeouts b.Montecarlo.timeouts;
  check_result (msg ^ ": golden_cycles") a.Montecarlo.golden_cycles
    b.Montecarlo.golden_cycles;
  check_result (msg ^ ": golden_dyn") a.Montecarlo.golden_dyn
    b.Montecarlo.golden_dyn;
  check_result (msg ^ ": population") a.Montecarlo.population
    b.Montecarlo.population;
  Alcotest.(check bool) (msg ^ ": model") true
    (a.Montecarlo.model = b.Montecarlo.model)

(* (a) A parallel campaign is bit-identical to the jobs=1 campaign and
   to the plain sequential Montecarlo.run, for the same seed. *)
let test_campaign_deterministic () =
  let trials = 60 and seed = 42 in
  let sequential =
    Engine.with_engine ~jobs:1 (fun e ->
        Engine.campaign e ~seed ~trials spec)
  in
  let parallel =
    Engine.with_engine ~jobs:4 (fun e ->
        Engine.campaign e ~seed ~trials spec)
  in
  same_result "jobs=4 vs jobs=1" parallel sequential;
  let direct =
    Engine.with_engine ~jobs:1 (fun e ->
        Montecarlo.run ~seed ~trials (Engine.compile e spec).Pipeline.schedule)
  in
  same_result "engine vs Montecarlo.run" parallel direct

(* Different seeds should not collapse onto the same trial stream. *)
let test_campaign_seed_sensitivity () =
  Engine.with_engine ~jobs:2 (fun e ->
      let a = Engine.campaign e ~seed:1 ~trials:80 spec in
      let b = Engine.campaign e ~seed:2 ~trials:80 spec in
      if
        a.Montecarlo.benign = b.Montecarlo.benign
        && a.Montecarlo.detected = b.Montecarlo.detected
        && a.Montecarlo.exceptions = b.Montecarlo.exceptions
        && a.Montecarlo.timeouts = b.Montecarlo.timeouts
      then
        Alcotest.fail "seeds 1 and 2 produced identical campaign breakdowns")

(* (b) The schedule cache returns the physically equal compile for a
   repeated key, and counts hits/misses. *)
let test_cache_physical_equality () =
  let cache = Cache.create () in
  let a = Cache.compile cache spec in
  let b = Cache.compile cache spec in
  Alcotest.(check bool) "same compile object" true (a == b);
  let other = { spec with Cache.issue_width = 3 } in
  let c = Cache.compile cache other in
  Alcotest.(check bool) "distinct keys distinct compiles" true (not (c == a));
  let s = Cache.stats cache in
  Alcotest.(check int) "misses" 2 s.Cache.misses;
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "entries" 2 s.Cache.entries

(* The pre-decoded program is memoized like the compile: repeated
   lookups, pool workers and whole campaigns all execute the physically
   equal decoded object — one decode per configuration per engine. *)
let test_cache_decoded_physically_shared () =
  let cache = Cache.create () in
  let a = Cache.decoded cache spec in
  let b = Cache.decoded cache spec in
  Alcotest.(check bool) "same decoded object" true (a == b);
  Alcotest.(check bool) "decoded from the cached compile" true
    (a.Casted_sim.Decode.sched == (Cache.compile cache spec).Pipeline.schedule);
  let s = Cache.stats cache in
  Alcotest.(check int) "decoded misses" 1 s.Cache.decoded_misses;
  Alcotest.(check int) "decoded hits" 1 s.Cache.decoded_hits;
  Alcotest.(check int) "decoded entries" 1 s.Cache.decoded_entries;
  (* Pool workers resolving the same key within one campaign's engine
     must all see the same decoded program. *)
  Engine.with_engine ~jobs:4 (fun e ->
      let d0 = Cache.decoded (Engine.cache e) spec in
      let seen =
        Pool.map (Engine.pool e)
          (fun _ -> Cache.decoded (Engine.cache e) spec == d0)
          (Array.init 8 Fun.id)
      in
      Alcotest.(check bool) "shared across pool workers" true
        (Array.for_all Fun.id seen);
      (* A whole campaign performs exactly zero additional decodes. *)
      let before = (Cache.stats (Engine.cache e)).Cache.decoded_misses in
      let _ = Engine.campaign e ~trials:10 spec in
      Alcotest.(check int) "campaign decoded nothing new" before
        (Cache.stats (Engine.cache e)).Cache.decoded_misses)

(* The engine shares one cache across jobs: a sweep then a campaign on a
   shared configuration must not recompile it. *)
let test_engine_shares_cache () =
  Engine.with_engine ~jobs:2 (fun e ->
      let _ = Engine.compile e spec in
      let misses = (Cache.stats (Engine.cache e)).Cache.misses in
      let _ = Engine.campaign e ~trials:5 spec in
      Alcotest.(check int) "campaign reused the sweep compile" misses
        (Cache.stats (Engine.cache e)).Cache.misses)

(* (c) Pool shutdown drains cleanly: every mapped task ran exactly once,
   results are in input order, and nothing is lost across batches. *)
let test_pool_drains () =
  let pool = Pool.create ~jobs:4 () in
  let n = 200 in
  let doubled = Pool.map pool (fun i -> 2 * i) (Array.init n Fun.id) in
  Alcotest.(check int) "result count" n (Array.length doubled);
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (2 * i) v)
    doubled;
  let more = Pool.map_list pool String.length [ "a"; "bb"; "ccc" ] in
  Alcotest.(check (list int)) "second batch" [ 1; 2; 3 ] more;
  Pool.shutdown pool;
  let s = Pool.stats pool in
  Alcotest.(check int) "no lost or duplicated tasks" (n + 3) s.Pool.tasks;
  Pool.shutdown pool (* idempotent *)

let test_pool_rejects_use_after_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool Fun.id [| 1 |]))

let test_pool_propagates_exceptions () =
  Pool.with_pool ~jobs:3 (fun pool ->
      match
        Pool.map pool
          (fun i -> if i = 7 then failwith "boom" else i)
          (Array.init 16 Fun.id)
      with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)

(* Sweep points come back in grid order whatever the pool size, and the
   engine job API agrees with the typed convenience. *)
let test_sweep_order_independent_of_jobs () =
  let sweep jobs =
    Engine.with_engine ~jobs (fun e ->
        List.map
          (fun (p : Engine.sweep_point) ->
            ( p.Engine.benchmark,
              Scheme.name p.Engine.scheme,
              p.Engine.issue,
              p.Engine.delay,
              p.Engine.run.Outcome.cycles ))
          (Engine.sweep e ~size:Workload.Fault ~benchmarks:[ "cjpeg" ]
             ~issues:[ 1; 2 ] ~delays:[ 1; 2 ] ()))
  in
  let seq = sweep 1 and par = sweep 4 in
  Alcotest.(check int) "point count" (2 * (2 + (2 * 2))) (List.length seq);
  List.iter2
    (fun (b, s, i, d, c) (b', s', i', d', c') ->
      Alcotest.(check string) "benchmark" b b';
      Alcotest.(check string) "scheme" s s';
      Alcotest.(check int) "issue" i i';
      Alcotest.(check int) "delay" d d';
      Alcotest.(check int) "cycles" c c')
    seq par

let test_job_model () =
  Engine.with_engine ~jobs:2 (fun e ->
      match
        Engine.run_jobs e
          [
            Engine.Compile spec;
            Engine.Campaign
              {
                spec;
                trials = 10;
                seed = 7;
                fuel_factor = 10;
                model = Casted_sim.Fault.Reg_bit;
                ci_halfwidth = None;
                checkpoint = None;
                resume = false;
              };
          ]
      with
      | [ Engine.Compiled c; Engine.Campaigned r ] ->
          Alcotest.(check bool) "compile cached" true
            (c == Engine.compile e spec);
          Alcotest.(check int) "campaign trials" 10 r.Montecarlo.trials
      | _ -> Alcotest.fail "unexpected job outcomes")

let test_rng_derive () =
  let a = Casted_sim.Rng.derive ~seed:1 0 in
  let b = Casted_sim.Rng.derive ~seed:1 1 in
  let c = Casted_sim.Rng.derive ~seed:2 0 in
  Alcotest.(check bool) "indices differ" true (a <> b);
  Alcotest.(check bool) "seeds differ" true (a <> c);
  Alcotest.(check bool) "non-negative" true (a >= 0 && b >= 0 && c >= 0);
  Alcotest.(check int) "deterministic" a (Casted_sim.Rng.derive ~seed:1 0)

(* The per-trial seed derivation must behave like a hash: non-negative
   everywhere and collision-free across the index range a real campaign
   uses, for several campaign seeds (including adversarial ones). *)
let test_rng_derive_sweep () =
  let n = 100_000 in
  List.iter
    (fun seed ->
      let seen = Hashtbl.create (2 * n) in
      for index = 0 to n - 1 do
        let d = Casted_sim.Rng.derive ~seed index in
        if d < 0 then
          Alcotest.failf "derive ~seed:%d %d is negative (%d)" seed index d;
        match Hashtbl.find_opt seen d with
        | Some prev ->
            Alcotest.failf
              "derive ~seed:%d collides at indices %d and %d (both %d)" seed
              prev index d
        | None -> Hashtbl.add seen d index
      done)
    [ 0; 1; 42; 0xCA57ED; max_int; min_int ]

(* Parallel == sequential for every fault model, not just the default:
   each model draws a different shape from the per-trial RNG, so each
   exercises the derivation independently. *)
let test_campaign_deterministic_all_models () =
  let trials = 40 and seed = 9 in
  List.iter
    (fun model ->
      let run jobs =
        Engine.with_engine ~jobs (fun e ->
            Engine.campaign e ~seed ~model ~trials spec)
      in
      let seq = run 1 and par = run 4 in
      same_result
        (Printf.sprintf "%s: jobs=4 vs jobs=1"
           (Casted_sim.Fault.model_name model))
        par seq)
    Casted_sim.Fault.all_models

(* Golden pins for the identity strings that campaign checkpoints embed
   and the result store hashes into entry addresses. These literals are
   the on-disk compatibility contract: if one of these checks fails, the
   change orphans every persisted checkpoint and store entry, so it must
   be an explicit migration, never an accident. *)
let test_identity_golden_matrix () =
  let expected =
    List.concat_map
      (fun s ->
        List.map
          (fun m -> Printf.sprintf "cjpeg/fault/%s/i2/d2/%s" s m)
          [ "reg-bit"; "burst"; "mem"; "control"; "xcluster" ])
      [ "NOED"; "SCED"; "DCED"; "CASTED"; "DME"; "TMR"; "ROLLBACK" ]
  in
  let actual =
    List.concat_map
      (fun scheme ->
        List.map
          (fun model ->
            Engine.campaign_identity
              (Cache.key ~workload:"cjpeg" ~size:Workload.Fault ~scheme
                 ~issue_width:2 ~delay:2 ())
              model)
          Casted_sim.Fault.all_models)
      Scheme.all
  in
  Alcotest.(check (list string))
    "every scheme × fault model identity" expected actual

let test_identity_golden_configs () =
  let check msg expected key =
    Alcotest.(check string) msg expected (Cache.identity key)
  in
  check "default options, sample config" "h263dec/perf/DCED/i4/d1"
    (Cache.key ~workload:"h263dec" ~size:Workload.Perf ~scheme:Scheme.Dced
       ~issue_width:4 ~delay:1 ());
  (* Non-default knobs fold in as a pinned FNV-1a suffix. *)
  check "no-stores ablation" "cjpeg/fault/CASTED/i2/d2/xf5bb32206b43d266"
    (Cache.key
       ~options:{ Options.default with Options.check_stores = false }
       ~workload:"cjpeg" ~size:Workload.Fault ~scheme:Scheme.Casted
       ~issue_width:2 ~delay:2 ());
  check "store-slice scope" "cjpeg/fault/CASTED/i2/d2/xa580c2a3b24ae35c"
    (Cache.key
       ~options:{ Options.default with Options.scope = Options.Store_slice }
       ~workload:"cjpeg" ~size:Workload.Fault ~scheme:Scheme.Casted
       ~issue_width:2 ~delay:2 ());
  check "bug override + optimize" "cjpeg/fault/CASTED/i2/d2/x56456894ab29bed7"
    (Cache.key
       ~bug_options:
         {
           Casted_sched.Bug.tie_break = Casted_sched.Bug.Prefer_critical_pred;
         }
       ~optimize:true ~workload:"cjpeg" ~size:Workload.Fault
       ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 ());
  (* Distinct knob settings must not collide onto one suffix. *)
  let ids =
    List.map Cache.identity
      [
        Cache.key ~workload:"cjpeg" ~size:Workload.Fault ~scheme:Scheme.Casted
          ~issue_width:2 ~delay:2 ();
        Cache.key
          ~options:{ Options.default with Options.check_stores = false }
          ~workload:"cjpeg" ~size:Workload.Fault ~scheme:Scheme.Casted
          ~issue_width:2 ~delay:2 ();
        Cache.key
          ~options:{ Options.default with Options.check_branches = false }
          ~workload:"cjpeg" ~size:Workload.Fault ~scheme:Scheme.Casted
          ~issue_width:2 ~delay:2 ();
        Cache.key ~optimize:true ~workload:"cjpeg" ~size:Workload.Fault
          ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 ();
      ]
  in
  Alcotest.(check int) "all distinct" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let suite =
  ( "engine",
    [
      case "parallel campaign deterministic" test_campaign_deterministic;
      case "campaign seed sensitivity" test_campaign_seed_sensitivity;
      case "cache physical equality" test_cache_physical_equality;
      case "decoded program physically shared"
        test_cache_decoded_physically_shared;
      case "engine shares cache across jobs" test_engine_shares_cache;
      case "pool drains on shutdown" test_pool_drains;
      case "pool rejects use after shutdown" test_pool_rejects_use_after_shutdown;
      case "pool propagates exceptions" test_pool_propagates_exceptions;
      case "sweep order independent of jobs" test_sweep_order_independent_of_jobs;
      case "job model round-trip" test_job_model;
      case "rng derive" test_rng_derive;
      case "rng derive 100k sweep, no collisions" test_rng_derive_sweep;
      case "campaign deterministic for every model"
        test_campaign_deterministic_all_models;
      case "identity golden: scheme × model matrix"
        test_identity_golden_matrix;
      case "identity golden: config samples and knob suffixes"
        test_identity_golden_configs;
    ] )
