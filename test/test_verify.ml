open Helpers
module Schedule = Casted_sched.Schedule
module Diag = Casted_verify.Diag
module Lint = Casted_verify.Lint
module Oracle = Casted_verify.Oracle
module Fuzz = Casted_verify.Fuzz
module Matrix = Casted_verify.Matrix

(* ---------- helpers ---------- *)

let compile ?(scheme = Scheme.Sced) ?(issue_width = 2) ?(delay = 1) program =
  Pipeline.compile ~scheme ~issue_width ~delay program

(* A small program exercising every invariant family: arithmetic
   (replicas), a store and a conditional branch (checks), a call into a
   protected callee (shadow copies for the result, parameter shadows,
   argument checks). *)
let mutation_program () =
  let callee =
    let x = Reg.gp 0 in
    let b = B.create ~name:"inc" ~params:[ x ] ~ret_cls:(Some Reg.Gp) () in
    let r = B.addi b x 1L in
    B.ret b ~value:r ();
    B.finish b
  in
  let b = B.create ~name:"main" () in
  let base = B.movi b 0x100L in
  let v = B.movi b 5L in
  let w = B.add b v v in
  let r = B.gp b in
  B.call b ~dst:r "inc" [ w ];
  B.st b Opcode.W8 ~value:r ~base 0L;
  let p = B.cmpi b Cond.Lt r 10L in
  B.if_ b p
    (fun b -> ignore (B.addi b r 2L))
    (fun b -> ignore (B.addi b r 3L));
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  let p =
    Program.make
      ~funcs:[ B.finish b; callee ]
      ~entry:"main" ~mem_size:4096 ~output_base:0x40 ~output_len:8 ()
  in
  Casted_ir.Validate.check_exn p;
  p

(* Remove instruction [id] from function [fname]: from the IR block
   bodies and from the schedule's bundles and issue map, consistently —
   mutation tests must trigger exactly the semantic rule under test, not
   the structural schedule/IR agreement rules. *)
let drop_insn (s : Schedule.t) fname id =
  let fs = Schedule.find_func s fname in
  let f = fs.Schedule.func in
  List.iter
    (fun (b : Block.t) ->
      b.Block.body <- List.filter (fun i -> i.Insn.id <> id) b.Block.body)
    f.Func.blocks;
  Array.iter
    (fun (bs : Schedule.block_schedule) ->
      Hashtbl.remove bs.Schedule.issue_of id;
      Array.iter
        (fun bundle ->
          Array.iteri
            (fun cl slots ->
              if Array.exists (fun i -> i.Insn.id = id) slots then
                bundle.(cl) <-
                  Array.of_list
                    (List.filter
                       (fun i -> i.Insn.id <> id)
                       (Array.to_list slots)))
            bundle)
        bs.Schedule.bundles)
    fs.Schedule.blocks

(* Every instruction of [fname] satisfying [pred]. *)
let find_insns (s : Schedule.t) fname pred =
  let fs = Schedule.find_func s fname in
  let found = ref [] in
  Func.iter_insns fs.Schedule.func (fun _ i ->
      if pred i then found := i :: !found);
  List.rev !found

let only_diag ~rule diags =
  match diags with
  | [ d ] ->
      Alcotest.(check string)
        "diagnostic rule" (Diag.rule_name rule)
        (Diag.rule_name d.Diag.rule)
  | ds ->
      Alcotest.failf "expected exactly one %s diagnostic, got %d: %s"
        (Diag.rule_name rule) (List.length ds)
        (String.concat "; " (List.map Diag.to_string ds))

(* ---------- lint is clean on the real pipeline ---------- *)

let test_lint_clean_all_schemes () =
  let program = mutation_program () in
  List.iter
    (fun (scheme, issue_width, delay) ->
      let c = compile ~scheme ~issue_width ~delay program in
      let diags = Lint.schedule ~scheme c.Pipeline.schedule in
      Alcotest.(check int)
        (Printf.sprintf "%s/i%d/d%d clean" (Scheme.name scheme) issue_width
           delay)
        0 (List.length diags))
    [
      (Scheme.Noed, 1, 1); (Scheme.Noed, 4, 1); (Scheme.Sced, 1, 1);
      (Scheme.Sced, 2, 1); (Scheme.Dced, 2, 3); (Scheme.Casted, 1, 1);
      (Scheme.Casted, 2, 2); (Scheme.Casted, 4, 4); (Scheme.Tmr, 1, 1);
      (Scheme.Tmr, 2, 2); (Scheme.Rollback, 2, 2); (Scheme.Rollback, 4, 1);
      (Scheme.Dme, 1, 1); (Scheme.Dme, 2, 2); (Scheme.Dme, 4, 3);
    ]

let test_lint_clean_workload () =
  let w =
    match Casted_workloads.Registry.find "cjpeg" with
    | Some w -> w
    | None -> Alcotest.fail "cjpeg not registered"
  in
  let program = w.Casted_workloads.Workload.build Casted_workloads.Workload.Fault in
  List.iter
    (fun scheme ->
      let c = compile ~scheme ~issue_width:2 ~delay:2 program in
      let diags = Lint.schedule ~scheme c.Pipeline.schedule in
      Alcotest.(check int)
        (Scheme.name scheme ^ " clean")
        0 (List.length diags))
    [
      Scheme.Noed; Scheme.Sced; Scheme.Dced; Scheme.Casted; Scheme.Dme;
      Scheme.Tmr; Scheme.Rollback;
    ]

(* ---------- mutation self-tests: each dropped artifact produces
   exactly its diagnostic ---------- *)

let test_mutation_drop_check () =
  let c = compile (mutation_program ()) in
  let s = c.Pipeline.schedule in
  (* The store's value-operand check: its (protected insn, register)
     pair is unique, so dropping it uncovers exactly one read. *)
  let store =
    match
      find_insns s "main" (fun i ->
          i.Insn.role = Insn.Original && Opcode.is_store i.Insn.op)
    with
    | i :: _ -> i
    | [] -> Alcotest.fail "no store in the hardened main"
  in
  let check =
    match
      find_insns s "main" (fun i ->
          i.Insn.role = Insn.Check && i.Insn.protects = store.Insn.id)
    with
    | i :: _ -> i
    | [] -> Alcotest.fail "store has no check"
  in
  drop_insn s "main" check.Insn.id;
  only_diag ~rule:Diag.Missing_check (Lint.schedule ~scheme:Scheme.Sced s)

let test_mutation_drop_shadow_copy () =
  let c = compile (mutation_program ()) in
  let s = c.Pipeline.schedule in
  (* The call-result copy (replica_of >= 0; parameter copies carry -1). *)
  let copy =
    match
      find_insns s "main" (fun i ->
          i.Insn.role = Insn.Shadow_copy && i.Insn.replica_of >= 0)
    with
    | i :: _ -> i
    | [] -> Alcotest.fail "no call-result shadow copy in main"
  in
  drop_insn s "main" copy.Insn.id;
  only_diag ~rule:Diag.Missing_shadow_copy
    (Lint.schedule ~scheme:Scheme.Sced s)

let test_mutation_drop_replica () =
  let c = compile (mutation_program ()) in
  let s = c.Pipeline.schedule in
  (* The replica of the [add]: its value feeds the call, so the shadow
     map loses one entry but no other rule fires. *)
  let add =
    match
      find_insns s "main" (fun i ->
          i.Insn.role = Insn.Original && i.Insn.op = Opcode.Add)
    with
    | i :: _ -> i
    | [] -> Alcotest.fail "no add in main"
  in
  let replica =
    match
      find_insns s "main" (fun i ->
          i.Insn.role = Insn.Replica && i.Insn.replica_of = add.Insn.id)
    with
    | i :: _ -> i
    | [] -> Alcotest.fail "add has no replica"
  in
  drop_insn s "main" replica.Insn.id;
  only_diag ~rule:Diag.Missing_replica (Lint.schedule ~scheme:Scheme.Sced s)

(* ---------- mutation self-tests: recovery-scheme rules ---------- *)

(* The store's majority vote under TMR: a Check-role [Sel] protecting
   the store. Dropping it leaves the store reading a triplicated
   register with no vote. *)
let tmr_vote_of s ~protects =
  match
    find_insns s "main" (fun i ->
        i.Insn.role = Insn.Check && i.Insn.op = Opcode.Sel
        && i.Insn.protects = protects)
  with
  | i :: _ -> i
  | [] -> Alcotest.fail "protected insn has no majority vote"

let tmr_store s =
  match
    find_insns s "main" (fun i ->
        i.Insn.role = Insn.Original && Opcode.is_store i.Insn.op)
  with
  | i :: _ -> i
  | [] -> Alcotest.fail "no store in the hardened main"

let test_mutation_drop_vote () =
  let c = compile ~scheme:Scheme.Tmr (mutation_program ()) in
  let s = c.Pipeline.schedule in
  let store = tmr_store s in
  let vote = tmr_vote_of s ~protects:store.Insn.id in
  drop_insn s "main" vote.Insn.id;
  only_diag ~rule:Diag.Missing_vote (Lint.schedule ~scheme:Scheme.Tmr s)

let test_mutation_drop_vote_rewrite () =
  let c = compile ~scheme:Scheme.Tmr (mutation_program ()) in
  let s = c.Pipeline.schedule in
  let store = tmr_store s in
  let vote = tmr_vote_of s ~protects:store.Insn.id in
  (* The Mov writing the voted value back into the master copy
     (the vote's third operand). *)
  let voted = vote.Insn.defs.(0) and master = vote.Insn.uses.(2) in
  let rewrite =
    match
      find_insns s "main" (fun i ->
          i.Insn.role = Insn.Check && i.Insn.op = Opcode.Mov
          && Array.length i.Insn.defs = 1
          && Reg.equal i.Insn.defs.(0) master
          && Array.length i.Insn.uses = 1
          && Reg.equal i.Insn.uses.(0) voted)
    with
    | i :: _ -> i
    | [] -> Alcotest.fail "vote has no master write-back"
  in
  drop_insn s "main" rewrite.Insn.id;
  only_diag ~rule:Diag.Partial_vote_rewrite
    (Lint.schedule ~scheme:Scheme.Tmr s)

let test_mutation_drop_checkpoint () =
  let c = compile ~scheme:Scheme.Rollback (mutation_program ()) in
  let s = c.Pipeline.schedule in
  let cpt =
    match
      find_insns s "main" (fun i -> Opcode.is_checkpoint i.Insn.op)
    with
    | i :: _ -> i
    | [] -> Alcotest.fail "no checkpoint in the rollback main"
  in
  drop_insn s "main" cpt.Insn.id;
  only_diag ~rule:Diag.Missing_checkpoint
    (Lint.schedule ~scheme:Scheme.Rollback s)

let test_mutation_sink_checkpoint () =
  let c = compile ~scheme:Scheme.Rollback (mutation_program ()) in
  let s = c.Pipeline.schedule in
  (* Sink the entry block's checkpoint below its first neighbour: the
     marker survives but no longer covers the whole region. The lint
     reads IR body order, so the schedule needs no touch-up. *)
  let fs = Schedule.find_func s "main" in
  let entry = List.hd fs.Schedule.func.Func.blocks in
  (match entry.Block.body with
  | cpt :: next :: rest when Opcode.is_checkpoint cpt.Insn.op ->
      entry.Block.body <- next :: cpt :: rest
  | _ -> Alcotest.fail "entry block does not open with a checkpoint");
  only_diag ~rule:Diag.Misplaced_checkpoint
    (Lint.schedule ~scheme:Scheme.Rollback s)

let test_mutation_duplicate_checkpoint () =
  let c = compile ~scheme:Scheme.Rollback (mutation_program ()) in
  let s = c.Pipeline.schedule in
  (* A second marker in the helper function: checkpoints are only valid
     at entry-function block tops. Schedule and issue map are patched
     consistently so only the placement rule fires. *)
  let fs = Schedule.find_func s "inc" in
  let block = List.hd fs.Schedule.func.Func.blocks in
  let extra = Insn.make ~id:100_000 ~op:Opcode.Cpt () in
  block.Block.body <- extra :: block.Block.body;
  let bs = fs.Schedule.blocks.(0) in
  let width = s.Schedule.config.Config.issue_width in
  let placed = ref false in
  Array.iteri
    (fun cycle bundle ->
      Array.iteri
        (fun cl slots ->
          if (not !placed) && Array.length slots < width then begin
            bundle.(cl) <- Array.append slots [| extra |];
            Hashtbl.replace bs.Schedule.issue_of extra.Insn.id (cycle, cl);
            placed := true
          end)
        bundle)
    bs.Schedule.bundles;
  if not !placed then Alcotest.fail "no free issue slot for the marker";
  only_diag ~rule:Diag.Misplaced_checkpoint
    (Lint.schedule ~scheme:Scheme.Rollback s)

(* ---------- mutation self-tests: DME decorrelation rules ---------- *)

(* Swap instruction [id] of [fname] for [repl] in the IR block bodies
   and the schedule bundles consistently, so only the semantic rule
   under test fires (same discipline as [drop_insn]). *)
let replace_insn (s : Schedule.t) fname ~id repl =
  let fs = Schedule.find_func s fname in
  List.iter
    (fun (b : Block.t) ->
      b.Block.body <-
        List.map (fun i -> if i.Insn.id = id then repl else i) b.Block.body)
    fs.Schedule.func.Func.blocks;
  Array.iter
    (fun (bs : Schedule.block_schedule) ->
      Array.iter
        (fun bundle ->
          Array.iteri
            (fun cl slots ->
              bundle.(cl) <-
                Array.map (fun i -> if i.Insn.id = id then repl else i) slots)
            bundle)
        bs.Schedule.bundles)
    fs.Schedule.blocks

(* Pull a replica memory access back onto the master image: its
   immediate no longer leads the original's by shadow_base, so the
   replica re-shares a line with the master and the decorrelation rule
   fires. *)
let test_mutation_correlated_replica_imm () =
  let c =
    compile ~scheme:Scheme.Dme ~issue_width:2 ~delay:2 (mutation_program ())
  in
  let s = c.Pipeline.schedule in
  let replica_mem =
    match
      find_insns s "main" (fun i ->
          i.Insn.role = Insn.Replica && Opcode.is_mem i.Insn.op)
    with
    | i :: _ -> i
    | [] -> Alcotest.fail "no replica memory access in the DME main"
  in
  replace_insn s "main" ~id:replica_mem.Insn.id
    { replica_mem with Insn.imm = Int64.sub replica_mem.Insn.imm 8L };
  only_diag ~rule:Diag.Decorrelation_violation
    (Lint.schedule ~scheme:Scheme.Dme s)

(* Merge two shadow definitions onto one register: the reconstructed
   shadow map stops being injective, so one shadow register carries
   two protected values and the collision rule fires. *)
let test_mutation_shadow_collision () =
  let c =
    compile ~scheme:Scheme.Dme ~issue_width:2 ~delay:2 (mutation_program ())
  in
  let s = c.Pipeline.schedule in
  let replicas =
    find_insns s "main" (fun i ->
        i.Insn.role = Insn.Replica
        && Array.length i.Insn.defs = 1
        && Reg.cls_equal (Reg.cls i.Insn.defs.(0)) Reg.Gp)
  in
  match replicas with
  | a :: b :: _ ->
      (* The instruction is shared physically between the IR body and
         the schedule bundles, so mutating its defs array tampers both
         views at once. *)
      b.Insn.defs.(0) <- a.Insn.defs.(0);
      let diags = Lint.schedule ~scheme:Scheme.Dme s in
      Alcotest.(check bool) "shadow-collision fires" true
        (List.exists
           (fun d -> d.Diag.rule = Diag.Shadow_collision)
           diags)
  | _ -> Alcotest.fail "fewer than two gp replicas in the DME main"

(* ---------- hand-built schedules for the machine-shape rules ---------- *)

(* A two-cluster schedule built by hand: producer on cluster 0,
   consumer on cluster 1. [slack] positions the consumer relative to
   the earliest legal cycle (latency + inter-cluster delay); [slack =
   -1] models a delay cycle dropped from the schedule. *)
let cross_cluster_fixture ~slack =
  let r1 = Reg.gp 0 and r2 = Reg.gp 1 in
  let i_movi = Insn.make ~id:0 ~op:Opcode.Movi ~defs:[| r1 |] ~imm:7L () in
  let i_add =
    Insn.make ~id:1 ~op:Opcode.Add ~defs:[| r2 |] ~uses:[| r1; r1 |] ()
  in
  let i_halt = Insn.make ~id:2 ~op:Opcode.Halt () in
  let block =
    Block.make ~label:"entry" ~body:[ i_movi; i_add ] ~term:i_halt
  in
  let f = Func.make ~name:"main" () in
  f.Func.blocks <- [ block ];
  let program = Program.make ~funcs:[ f ] ~entry:"main" ~mem_size:256 () in
  let config = Config.make ~clusters:2 ~issue_width:1 ~delay:2 () in
  let lat = Latency.of_op config.Config.latencies Opcode.Movi in
  let add_cycle = lat + config.Config.delay + slack in
  let n = add_cycle + 2 in
  let bundles = Array.init n (fun _ -> Array.init 2 (fun _ -> [||])) in
  bundles.(0).(0) <- [| i_movi |];
  bundles.(add_cycle).(1) <- [| i_add |];
  bundles.(n - 1).(0) <- [| i_halt |];
  let issue_of = Hashtbl.create 4 in
  Hashtbl.replace issue_of 0 (0, 0);
  Hashtbl.replace issue_of 1 (add_cycle, 1);
  Hashtbl.replace issue_of 2 (n - 1, 0);
  {
    Schedule.program;
    config;
    funcs =
      [
        ( "main",
          {
            Schedule.func = f;
            blocks = [| { Schedule.label = "entry"; bundles; issue_of } |];
          } );
      ];
  }

let test_mutation_drop_delay_cycle () =
  (* At the legal cycle the fixture is clean; one cycle earlier it is
     exactly one delay violation. *)
  Alcotest.(check int)
    "legal cross-cluster read is clean" 0
    (List.length (Lint.schedule ~scheme:Scheme.Noed (cross_cluster_fixture ~slack:0)));
  only_diag ~rule:Diag.Delay_violation
    (Lint.schedule ~scheme:Scheme.Noed (cross_cluster_fixture ~slack:(-1)))

let test_bundle_overflow () =
  let s = cross_cluster_fixture ~slack:0 in
  (* Issue a second, independent instruction in an occupied
     width-1 slot. *)
  let extra = Insn.make ~id:3 ~op:Opcode.Movi ~defs:[| Reg.gp 2 |] ~imm:1L () in
  let fs = Schedule.find_func s "main" in
  let bs = fs.Schedule.blocks.(0) in
  bs.Schedule.bundles.(0).(0) <- [| bs.Schedule.bundles.(0).(0).(0); extra |];
  Hashtbl.replace bs.Schedule.issue_of 3 (0, 0);
  let block = List.hd fs.Schedule.func.Func.blocks in
  block.Block.body <- [ List.hd block.Block.body; extra; List.nth block.Block.body 1 ];
  only_diag ~rule:Diag.Bundle_overflow (Lint.schedule ~scheme:Scheme.Noed s)

let test_unresolved_target () =
  let s = cross_cluster_fixture ~slack:0 in
  let fs = Schedule.find_func s "main" in
  let block = List.hd fs.Schedule.func.Func.blocks in
  (* Retarget the terminator at a label no block carries. *)
  let bad_br = Insn.make ~id:2 ~op:Opcode.Br ~target:"nowhere" () in
  block.Block.term <- bad_br;
  let bs = fs.Schedule.blocks.(0) in
  let n = Array.length bs.Schedule.bundles in
  bs.Schedule.bundles.(n - 1).(0) <- [| bad_br |];
  only_diag ~rule:Diag.Unresolved_target (Lint.schedule ~scheme:Scheme.Noed s)

let test_replica_overlap () =
  (* A replica that clobbers its own original's register. *)
  let r0 = Reg.gp 0 in
  let orig = Insn.make ~id:0 ~op:Opcode.Movi ~defs:[| r0 |] ~imm:3L () in
  let replica =
    Insn.make ~id:1 ~op:Opcode.Movi ~defs:[| r0 |] ~imm:3L ~role:Insn.Replica
      ~replica_of:0 ()
  in
  let halt = Insn.make ~id:2 ~op:Opcode.Halt () in
  let block = Block.make ~label:"entry" ~body:[ orig; replica ] ~term:halt in
  let f = Func.make ~name:"main" () in
  f.Func.blocks <- [ block ];
  let program = Program.make ~funcs:[ f ] ~entry:"main" ~mem_size:256 () in
  let config = Config.make ~clusters:1 ~issue_width:1 ~delay:1 () in
  let bundles = Array.init 3 (fun _ -> Array.init 1 (fun _ -> [||])) in
  bundles.(0).(0) <- [| orig |];
  bundles.(1).(0) <- [| replica |];
  bundles.(2).(0) <- [| halt |];
  let issue_of = Hashtbl.create 4 in
  Hashtbl.replace issue_of 0 (0, 0);
  Hashtbl.replace issue_of 1 (1, 0);
  Hashtbl.replace issue_of 2 (2, 0);
  let s =
    {
      Schedule.program;
      config;
      funcs =
        [
          ( "main",
            {
              Schedule.func = f;
              blocks = [| { Schedule.label = "entry"; bundles; issue_of } |];
            } );
        ];
    }
  in
  match Lint.schedule ~scheme:Scheme.Sced s with
  | [ d ] ->
      Alcotest.(check string)
        "rule" "replica-overlap"
        (Diag.rule_name d.Diag.rule);
      Alcotest.(check bool)
        "message names the register" true
        (contains d.Diag.message "r0")
  | ds ->
      Alcotest.failf "expected one replica-overlap, got %d" (List.length ds)

(* ---------- differential oracle ---------- *)

let test_oracle_clean () =
  let program = mutation_program () in
  let divs = Oracle.differential program in
  Alcotest.(check int) "no divergences" 0 (List.length divs)

let test_oracle_matrix_shape () =
  let cells = Oracle.cells ~issue_widths:[ 1; 2 ] ~delays:[ 1; 3 ] () in
  (* Per issue width: NOED + SCED once; DCED, CASTED, DME, TMR and
     ROLLBACK per delay. *)
  Alcotest.(check int) "cell count" (2 * (2 + (5 * 2))) (List.length cells)

let test_oracle_detects_output_divergence () =
  (* Two different programs pushed through the same oracle must
     diverge: validates that the comparison actually bites. *)
  let p1 = compute_program (fun b -> B.movi b 1L) in
  let p2 = compute_program (fun b -> B.movi b 2L) in
  let reference = Oracle.reference p1 in
  let divs =
    Oracle.check_cell ~reference p2
      { Oracle.scheme = Scheme.Sced; issue_width = 2; delay = 1 }
  in
  Alcotest.(check bool) "diverges" true (divs <> []);
  Alcotest.(check bool)
    "output field named" true
    (List.exists (fun d -> d.Oracle.field = "output") divs)

(* ---------- matrix runner ---------- *)

let test_matrix_single_workload () =
  let cells = [ { Oracle.scheme = Scheme.Casted; issue_width = 2; delay = 2 } ] in
  let entries = Matrix.run ~benchmarks:[ "cjpeg" ] ~cells () in
  Alcotest.(check int) "one entry" 1 (List.length entries);
  Alcotest.(check bool) "clean" true (Matrix.clean entries)

let test_matrix_rejects_unknown () =
  match Matrix.run ~benchmarks:[ "nonesuch" ] () with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the benchmark" true
        (contains msg "nonesuch")
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---------- fuzzer ---------- *)

let test_fuzz_deterministic () =
  let a = Fuzz.recipe ~seed:7 3 and b = Fuzz.recipe ~seed:7 3 in
  Alcotest.(check bool) "same recipe" true (a = b);
  let c = Fuzz.recipe ~seed:7 4 in
  Alcotest.(check bool) "different index, different recipe" true (a <> c);
  let pa = Casted_ir.Asm.print (Fuzz.emit_program a) in
  let pb = Casted_ir.Asm.print (Fuzz.emit_program b) in
  Alcotest.(check string) "same program text" pa pb

let test_fuzz_small_campaign_clean () =
  match Fuzz.run ~programs:5 ~seed:0xC457ED () with
  | None -> ()
  | Some f -> Alcotest.failf "fuzz failure: %a" Fuzz.pp_failure f

let test_fuzz_four_way_includes_compiled () =
  (* The oracle's cross-check is four-way (run / run_decoded /
     run_replayed / run_compiled) — a fuzz-generated program must come
     back clean on a cell of each flavour, which fails if the stage-2
     compiled engine diverges from the interpreter on any field. *)
  let program = Fuzz.emit_program (Fuzz.recipe ~seed:0xC0DE 1) in
  let reference = Oracle.reference program in
  List.iter
    (fun cell ->
      match Oracle.check_cell ~reference program cell with
      | [] -> ()
      | divs ->
          Alcotest.failf "%a: %d divergences, first: %a" Oracle.pp_cell cell
            (List.length divs) Oracle.pp_divergence (List.hd divs))
    [
      { Oracle.scheme = Scheme.Casted; issue_width = 2; delay = 2 };
      { Oracle.scheme = Scheme.Tmr; issue_width = 2; delay = 1 };
      { Oracle.scheme = Scheme.Rollback; issue_width = 1; delay = 1 };
    ]

let test_fuzz_programs_run () =
  (* Generated programs execute to a clean exit under NOED. *)
  for index = 0 to 4 do
    let p = Fuzz.emit_program (Fuzz.recipe ~seed:99 index) in
    Casted_ir.Validate.check_exn p;
    let r = run_noed p in
    match r.Outcome.termination with
    | Outcome.Exit 0 -> ()
    | t ->
        Alcotest.failf "program %d did not exit cleanly: %a" index
          Outcome.pp_termination t
  done

let suite =
  ( "verify",
    [
      case "lint: clean on every scheme and shape" test_lint_clean_all_schemes;
      case "lint: clean on a real workload" test_lint_clean_workload;
      case "mutation: dropped check -> missing-check"
        test_mutation_drop_check;
      case "mutation: dropped shadow copy -> missing-shadow-copy"
        test_mutation_drop_shadow_copy;
      case "mutation: dropped replica -> missing-replica"
        test_mutation_drop_replica;
      case "mutation: dropped delay cycle -> delay-violation"
        test_mutation_drop_delay_cycle;
      case "mutation: dropped vote -> missing-vote" test_mutation_drop_vote;
      case "mutation: dropped vote write-back -> partial-vote-rewrite"
        test_mutation_drop_vote_rewrite;
      case "mutation: dropped checkpoint -> missing-checkpoint"
        test_mutation_drop_checkpoint;
      case "mutation: sunk checkpoint -> misplaced-checkpoint"
        test_mutation_sink_checkpoint;
      case "mutation: checkpoint in a callee -> misplaced-checkpoint"
        test_mutation_duplicate_checkpoint;
      case "mutation: correlated replica imm -> decorrelation-violation"
        test_mutation_correlated_replica_imm;
      case "mutation: merged shadows -> shadow-collision"
        test_mutation_shadow_collision;
      case "lint: bundle overflow" test_bundle_overflow;
      case "lint: unresolved branch target" test_unresolved_target;
      case "lint: replica clobbering a master register" test_replica_overlap;
      case "oracle: clean on the mutation program" test_oracle_clean;
      case "oracle: matrix shape" test_oracle_matrix_shape;
      case "oracle: detects an output divergence"
        test_oracle_detects_output_divergence;
      case "matrix: single workload, single cell" test_matrix_single_workload;
      case "matrix: rejects unknown benchmarks" test_matrix_rejects_unknown;
      case "fuzz: generation is deterministic" test_fuzz_deterministic;
      case "fuzz: small campaign is clean" test_fuzz_small_campaign_clean;
      case "fuzz: four-way oracle includes the compiled engine"
        test_fuzz_four_way_includes_compiled;
      case "fuzz: generated programs exit cleanly" test_fuzz_programs_run;
    ] )
