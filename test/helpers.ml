(* Shared test utilities. *)

module B = Casted_ir.Builder
module Reg = Casted_ir.Reg
module Cond = Casted_ir.Cond
module Opcode = Casted_ir.Opcode
module Insn = Casted_ir.Insn
module Block = Casted_ir.Block
module Func = Casted_ir.Func
module Program = Casted_ir.Program
module Config = Casted_machine.Config
module Latency = Casted_machine.Latency
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Options = Casted_detect.Options
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome

(* Wrap a single-block body into a runnable program. The body receives
   the builder; the program halts with exit code 0. Memory is 64 KiB. *)
let program_of ?(data = []) ?(output_base = 0x40) ?(output_len = 8) body =
  let b = B.create ~name:"main" () in
  body b;
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  let p =
    Program.make ~funcs:[ B.finish b ] ~entry:"main" ~mem_size:(1 lsl 16)
      ~data ~output_base ~output_len ()
  in
  Casted_ir.Validate.check_exn p;
  p

(* Run a program unhardened on a simple 1-cluster machine and return the
   result. *)
let run_noed ?(issue_width = 2) program =
  let c =
    Pipeline.compile ~scheme:Scheme.Noed ~issue_width ~delay:1 program
  in
  Simulator.run c.Pipeline.schedule

let run_scheme ?(issue_width = 2) ?(delay = 2) scheme program =
  let c = Pipeline.compile ~scheme ~issue_width ~delay program in
  Simulator.run c.Pipeline.schedule

(* Read the first 8 output bytes as an int64. *)
let out64 (r : Outcome.run) =
  if String.length r.Outcome.output < 8 then
    Alcotest.fail "output region too small";
  String.get_int64_le r.Outcome.output 0

(* A program that stores the result of [body] (a Gp register) to the
   output region and halts. *)
let compute_program body =
  program_of (fun b ->
      let v = body b in
      let out = B.movi b 0x40L in
      B.st b Opcode.W8 ~value:v ~base:out 0L)

(* Assert that a computation yields the given int64. *)
let check_compute name expected body =
  let r = run_noed (compute_program body) in
  (match r.Outcome.termination with
  | Outcome.Exit 0 -> ()
  | t ->
      Alcotest.failf "%s: did not exit cleanly: %a" name
        Outcome.pp_termination t);
  Alcotest.(check int64) name expected (out64 r)

(* Expect the program to trap. *)
let check_traps name body =
  let r = run_noed (compute_program body) in
  match r.Outcome.termination with
  | Outcome.Trapped _ -> ()
  | t ->
      Alcotest.failf "%s: expected a trap, got %a" name Outcome.pp_termination
        t

(* Substring test, for asserting on error-message content. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.equal (String.sub haystack i nn) needle || go (i + 1)
  in
  nn = 0 || go 0

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let case name f = Alcotest.test_case name `Quick f
