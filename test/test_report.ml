open Helpers
module Table = Casted_report.Table
module Perf_sweep = Casted_report.Perf_sweep
module Scaling = Casted_report.Scaling
module Coverage = Casted_report.Coverage
module Static_tables = Casted_report.Static_tables
module Montecarlo = Casted_sim.Montecarlo

let test_table_rendering () =
  let s =
    Table.render ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (* header + separator + 2 rows + trailing newline *)
  Alcotest.(check int) "line count" 5 (List.length lines);
  Alcotest.(check bool) "separator present" true
    (String.length (List.nth lines 1) > 0
    && String.for_all
         (fun c -> c = '-' || c = ' ')
         (List.nth lines 1))

let test_formatting_helpers () =
  Alcotest.(check string) "f2" "1.23" (Table.f2 1.2345);
  Alcotest.(check string) "pct" "45.6%" (Table.pct 45.61)

(* A small sweep shared by several cases (two benchmarks, two issue
   widths, one delay, fault-sized inputs to stay quick). *)
let small_sweep =
  lazy
    (Perf_sweep.run ~size:Casted_workloads.Workload.Fault
       ~benchmarks:[ "cjpeg"; "181.mcf" ] ~issues:[ 1; 2 ] ~delays:[ 1; 3 ]
       ())

let test_sweep_points_complete () =
  let s = Lazy.force small_sweep in
  (* 2 benchmarks x 2 issues x (NOED + SCED + 2 x (DCED + CASTED)). *)
  Alcotest.(check int) "point count" (2 * 2 * 6)
    (List.length s.Perf_sweep.points)

let test_noed_slowdown_is_one () =
  let s = Lazy.force small_sweep in
  List.iter
    (fun benchmark ->
      List.iter
        (fun issue ->
          let v =
            Perf_sweep.slowdown s ~benchmark ~scheme:Scheme.Noed ~issue
              ~delay:1
          in
          Alcotest.(check (float 1e-9)) "noed normalised" 1.0 v)
        [ 1; 2 ])
    [ "cjpeg"; "181.mcf" ]

let test_hardened_slowdowns_above_one () =
  let s = Lazy.force small_sweep in
  List.iter
    (fun benchmark ->
      List.iter
        (fun scheme ->
          List.iter
            (fun issue ->
              List.iter
                (fun delay ->
                  let v =
                    Perf_sweep.slowdown s ~benchmark ~scheme ~issue ~delay
                  in
                  if v < 1.0 then
                    Alcotest.failf "%s %s %d/%d: slowdown %.3f < 1" benchmark
                      (Scheme.name scheme) issue delay v)
                [ 1; 3 ])
            [ 1; 2 ])
        [ Scheme.Sced; Scheme.Dced; Scheme.Casted ])
    [ "cjpeg"; "181.mcf" ]

let test_summary_sane () =
  let s = Lazy.force small_sweep in
  let sum = Perf_sweep.summarize s in
  Alcotest.(check bool) "min <= avg <= max" true
    (sum.Perf_sweep.sced_min <= sum.Perf_sweep.sced_avg
    && sum.Perf_sweep.sced_avg <= sum.Perf_sweep.sced_max);
  Alcotest.(check bool) "casted avg below sced avg" true
    (sum.Perf_sweep.casted_avg <= sum.Perf_sweep.sced_avg);
  Alcotest.(check bool) "gain non-negative" true
    (sum.Perf_sweep.best_gain >= 0.0)

let test_scaling_baseline () =
  let s = Lazy.force small_sweep in
  (* Speedup at issue 1 is 1 by definition. *)
  List.iter
    (fun scheme ->
      let v =
        Scaling.speedup s ~benchmark:"cjpeg" ~scheme ~issue:1 ~delay:1
      in
      Alcotest.(check (float 1e-9)) (Scheme.name scheme) 1.0 v)
    [ Scheme.Noed; Scheme.Sced; Scheme.Dced; Scheme.Casted ]

let test_render_nonempty () =
  let s = Lazy.force small_sweep in
  Alcotest.(check bool) "panels render" true
    (String.length (Perf_sweep.render_all s) > 100);
  Alcotest.(check bool) "scaling renders" true
    (String.length (Scaling.render_all ~delay:1 s) > 100);
  Alcotest.(check bool) "summary renders" true
    (String.length (Perf_sweep.render_summary (Perf_sweep.summarize s)) > 50)

let test_campaign_row () =
  let row =
    Coverage.campaign ~trials:30 ~benchmark:"cjpeg" ~scheme:Scheme.Casted
      ~issue:2 ~delay:2 ()
  in
  let r = row.Coverage.result in
  Alcotest.(check int) "trials recorded" 30 r.Montecarlo.trials;
  let total =
    List.fold_left
      (fun acc c -> acc +. Montecarlo.percent r c)
      0.0 Montecarlo.all_classes
  in
  Alcotest.(check (float 1e-6)) "percentages sum to 100" 100.0 total

let test_coverage_render () =
  let rows =
    [
      Coverage.campaign ~trials:10 ~benchmark:"cjpeg" ~scheme:Scheme.Noed
        ~issue:2 ~delay:2 ();
    ]
  in
  let s = Coverage.render rows in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "mentions benchmark" true (contains s "cjpeg");
  Alcotest.(check bool) "carries the recovered column" true
    (contains s "recovered")

let test_static_tables () =
  let t1 =
    Static_tables.table1 (Config.dual_core ~issue_width:2 ~delay:2)
  in
  Alcotest.(check bool) "table1 lists the caches" true
    (String.length t1 > 100);
  let t2 = Static_tables.table2 () in
  Alcotest.(check bool) "table2 lists 7 benchmarks" true
    (List.length (String.split_on_char '\n' t2) >= 9);
  let t3 = Static_tables.table3 () in
  Alcotest.(check bool) "table3 includes CASTED" true
    (String.length t3 > 100)

let suite =
  ( "report",
    [
      case "table rendering" test_table_rendering;
      case "formatting helpers" test_formatting_helpers;
      case "sweep point grid complete" test_sweep_points_complete;
      case "NOED normalises to 1.0" test_noed_slowdown_is_one;
      case "hardened slowdowns >= 1" test_hardened_slowdowns_above_one;
      case "summary statistics sane" test_summary_sane;
      case "scaling baseline" test_scaling_baseline;
      case "renderers produce output" test_render_nonempty;
      case "campaign percentages sum to 100" test_campaign_row;
      case "coverage rendering" test_coverage_render;
      case "static tables (I-III)" test_static_tables;
    ] )
