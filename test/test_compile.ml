(* The stage-2 closure-threaded engine: bit-identity against the
   decoded interpreter (fault-free and under every fault model), one
   physically shared compiled program per cache key (across hits and
   pool domains), and pool-size-independent campaign tallies on the
   compiled path. *)

open Helpers
module Montecarlo = Casted_sim.Montecarlo
module Compile = Casted_sim.Compile
module Decode = Casted_sim.Decode
module Fault = Casted_sim.Fault
module Cache = Casted_engine.Cache
module Engine = Casted_engine.Engine
module Pool = Casted_exec.Pool
module W = Casted_workloads.Workload

let cjpeg_key ?(scheme = Scheme.Casted) () =
  Cache.key ~workload:"cjpeg" ~size:W.Fault ~scheme ~issue_width:2 ~delay:2
    ()

let cjpeg_decoded ?scheme () =
  let program =
    match Casted_workloads.Registry.find "cjpeg" with
    | Some w -> w.W.build W.Fault
    | None -> Alcotest.fail "cjpeg not registered"
  in
  let scheme = Option.value scheme ~default:Scheme.Casted in
  let c = Pipeline.compile ~scheme ~issue_width:2 ~delay:2 program in
  Decode.of_schedule c.Pipeline.schedule

let same_run msg (a : Outcome.run) (b : Outcome.run) =
  let ck f x y = Alcotest.(check int) (msg ^ ": " ^ f) x y in
  ck "cycles" a.Outcome.cycles b.Outcome.cycles;
  ck "dyn_insns" a.Outcome.dyn_insns b.Outcome.dyn_insns;
  ck "dyn_defs" a.Outcome.dyn_defs b.Outcome.dyn_defs;
  ck "dyn_mem" a.Outcome.dyn_mem b.Outcome.dyn_mem;
  ck "dyn_branches" a.Outcome.dyn_branches b.Outcome.dyn_branches;
  ck "dyn_xreads" a.Outcome.dyn_xreads b.Outcome.dyn_xreads;
  ck "dyn_checks" a.Outcome.dyn_checks b.Outcome.dyn_checks;
  ck "slots_total" a.Outcome.slots_total b.Outcome.slots_total;
  ck "exit_code" a.Outcome.exit_code b.Outcome.exit_code;
  Alcotest.(check bool)
    (msg ^ ": termination") true
    (a.Outcome.termination = b.Outcome.termination);
  Alcotest.(check string) (msg ^ ": output") a.Outcome.output b.Outcome.output;
  Alcotest.(check string)
    (msg ^ ": mem_digest") a.Outcome.mem_digest b.Outcome.mem_digest

(* Fault-free: the compiled run must match the decoded run field for
   field on every scheme, including the whole final memory image. *)
let test_fault_free_bit_identity () =
  List.iter
    (fun scheme ->
      let decoded = cjpeg_decoded ~scheme () in
      let a = Simulator.run_decoded ~with_mem_digest:true decoded in
      let b =
        Simulator.run_compiled ~with_mem_digest:true
          (Compile.of_decoded decoded)
      in
      same_run (Scheme.name scheme) a b)
    [ Scheme.Noed; Scheme.Sced; Scheme.Dced; Scheme.Casted; Scheme.Tmr ]

(* Faulty trials: same classification as the interpreter for every
   fault model, with and without golden-prefix replay composed in. *)
let test_faulty_trials_every_model () =
  let decoded = cjpeg_decoded () in
  let compiled = Compile.of_decoded decoded in
  let check ~replay =
    let golden = Montecarlo.golden_decoded ~replay decoded in
    List.iter
      (fun model ->
        for index = 0 to 15 do
          let a =
            Montecarlo.trial_decoded ~model ~golden ~seed:42 ~index decoded
          in
          let b =
            Montecarlo.trial_compiled ~model ~golden ~seed:42 ~index
              ~compiled decoded
          in
          Alcotest.(check string)
            (Printf.sprintf "%s trial %d (replay=%b)"
               (Fault.model_name model) index replay)
            (Montecarlo.class_name a) (Montecarlo.class_name b)
        done)
      Fault.all_models
  in
  check ~replay:false;
  check ~replay:true

(* Cache: repeated lookups return the physically equal program. *)
let test_cache_physical_sharing () =
  let cache = Cache.create () in
  let k = cjpeg_key () in
  let a = Cache.compiled cache k in
  let b = Cache.compiled cache k in
  Alcotest.(check bool) "physically equal" true (a == b);
  let s = Cache.stats cache in
  Alcotest.(check int) "one stage-2 compile" 1 s.Cache.compiled_misses;
  Alcotest.(check int) "one hit" 1 s.Cache.compiled_hits;
  Alcotest.(check int) "one entry" 1 s.Cache.compiled_entries

(* Cache under a pool: every domain racing on the same key receives the
   same program (first insert wins). *)
let test_cache_sharing_across_domains () =
  let cache = Cache.create () in
  let k = cjpeg_key () in
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let programs =
        Pool.map pool (fun _ -> Cache.compiled cache k) [| 0; 1; 2; 3 |]
      in
      Array.iter
        (fun p ->
          Alcotest.(check bool)
            "same program on every domain" true
            (p == programs.(0)))
        programs;
      let s = Cache.stats cache in
      Alcotest.(check int) "one entry" 1 s.Cache.compiled_entries)

let same_result msg (a : Montecarlo.result) (b : Montecarlo.result) =
  let ck f x y = Alcotest.(check int) (msg ^ ": " ^ f) x y in
  ck "trials" a.Montecarlo.trials b.Montecarlo.trials;
  ck "benign" a.Montecarlo.benign b.Montecarlo.benign;
  ck "detected" a.Montecarlo.detected b.Montecarlo.detected;
  ck "exceptions" a.Montecarlo.exceptions b.Montecarlo.exceptions;
  ck "corrupt" a.Montecarlo.corrupt b.Montecarlo.corrupt;
  ck "timeouts" a.Montecarlo.timeouts b.Montecarlo.timeouts;
  ck "recovered" a.Montecarlo.recovered b.Montecarlo.recovered

(* Compiled campaigns are pool-size independent, and match the
   interpreter tally bit for bit. *)
let test_campaign_jobs_bit_identity () =
  let k = cjpeg_key () in
  let campaign engine ~compile =
    Engine.campaign engine ~seed:7 ~compile ~trials:256 k
  in
  let one = Engine.with_engine ~jobs:1 (campaign ~compile:true) in
  let four = Engine.with_engine ~jobs:4 (campaign ~compile:true) in
  same_result "jobs 1 vs 4 (compiled)" one four;
  let interp = Engine.with_engine ~jobs:4 (campaign ~compile:false) in
  same_result "compiled vs interpreter" one interp

let suite =
  ( "compile",
    [
      case "fault-free runs are bit-identical to decoded, every scheme"
        test_fault_free_bit_identity;
      case "faulty trials match the interpreter on every model"
        test_faulty_trials_every_model;
      case "cache hits share one compiled program"
        test_cache_physical_sharing;
      case "pool domains share one compiled program"
        test_cache_sharing_across_domains;
      case "campaign tally is jobs- and engine-independent"
        test_campaign_jobs_bit_identity;
    ] )
