(* The decorrelated multi-version (DME) scheme and its IR machinery:
   deep clones share nothing with their source, the seeded rewrites
   are deterministic bijections, the register shuffle never touches a
   master instruction, and the hardened program still computes the
   golden output. *)

open Helpers
module Asm = Casted_ir.Asm
module Clone = Casted_ir.Clone
module Rewrite = Casted_ir.Rewrite
module Dme = Casted_detect.Dme
module Transform = Casted_detect.Transform

(* A program with two functions (one a protected helper), loads,
   stores and a loop — enough structure that a shallow clone would
   alias something. *)
let sample () =
  let helper =
    let a = Reg.gp 0 in
    let b = B.create ~name:"helper" ~params:[ a ] ~ret_cls:(Some Reg.Gp) () in
    let r = B.muli b a 3L in
    B.ret b ~value:r ();
    B.finish b
  in
  let b = B.create ~name:"main" () in
  let base = B.movi b 0x1000L in
  let acc = B.movi b 0L in
  B.counted_loop b ~from:0L ~until:8L (fun b i ->
      let off = B.muli b i 8L in
      let at = B.add b base off in
      let v = B.ld b Opcode.W8 at 0L in
      let t = B.gp b in
      B.call b ~dst:t "helper" [ v ];
      let (_ : Reg.t) = B.add b ~dst:acc acc t in
      B.st b Opcode.W8 ~value:acc ~base 0x100L);
  let out = B.movi b 0x40L in
  B.st b Opcode.W8 ~value:acc ~base:out 0L;
  let zero = B.movi b 0L in
  B.halt b ~code:zero ();
  let p =
    Program.make
      ~funcs:[ B.finish b; helper ]
      ~entry:"main" ~mem_size:(1 lsl 16)
      ~data:[ (0x1000, Casted_workloads.Gen.le64 (List.init 8 Int64.of_int)) ]
      ~output_base:0x40 ~output_len:8 ()
  in
  Casted_ir.Validate.check_exn p;
  p

(* ---------- deep clone: physical disjointness ---------- *)

(* Clone.block used to share the body instruction list (and the
   instructions' operand arrays) with its source, so an in-place pass
   on the clone corrupted the original. Regression: the clone must be
   textually identical but share no mutable structure. *)
let test_clone_physically_disjoint () =
  let p = sample () in
  let c = Clone.program p in
  Alcotest.(check string) "clone prints identically" (Asm.print p)
    (Asm.print c);
  List.iter2
    (fun (f : Func.t) (cf : Func.t) ->
      Alcotest.(check bool) "funcs are distinct" false (f == cf);
      Alcotest.(check bool) "next_reg arrays are distinct" false
        (f.Func.next_reg == cf.Func.next_reg);
      List.iter2
        (fun (b : Block.t) (cb : Block.t) ->
          Alcotest.(check bool) "blocks are distinct" false (b == cb);
          Alcotest.(check bool) "bodies are distinct lists" false
            (b.Block.body == cb.Block.body);
          Alcotest.(check bool) "terminators are distinct" false
            (b.Block.term == cb.Block.term);
          List.iter2
            (fun (i : Insn.t) (ci : Insn.t) ->
              Alcotest.(check bool) "insns are distinct" false (i == ci);
              if Array.length i.Insn.defs > 0 then
                Alcotest.(check bool) "defs arrays are distinct" false
                  (i.Insn.defs == ci.Insn.defs);
              if Array.length i.Insn.uses > 0 then
                Alcotest.(check bool) "uses arrays are distinct" false
                  (i.Insn.uses == ci.Insn.uses))
            b.Block.body cb.Block.body)
        f.Func.blocks cf.Func.blocks)
    p.Program.funcs c.Program.funcs

(* Mutating the clone in place — exactly what the hardening passes do —
   leaves the original byte-identical. *)
let test_clone_mutation_isolated () =
  let p = sample () in
  let before = Asm.print p in
  let c = Clone.program p in
  (match c.Program.funcs with
  | f :: _ ->
      let (_ : Transform.stats) =
        Transform.func ~replicate_stores:true ~mem_offset:64L Options.default
          f
      in
      ()
  | [] -> Alcotest.fail "clone has no funcs");
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Insn.t) ->
              Array.iteri (fun k _ -> i.Insn.defs.(k) <- Reg.gp 999) i.Insn.defs)
            b.Block.body)
        f.Func.blocks)
    c.Program.funcs;
  Alcotest.(check string) "original survives clone surgery" before
    (Asm.print p)

(* ---------- seeded rewrites ---------- *)

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all (fun x -> x >= 0 && x < n && not seen.(x) && (seen.(x) <- true; true)) a

let test_permutation_is_bijection () =
  List.iter
    (fun n ->
      let a = Rewrite.permutation ~seed:42 n in
      Alcotest.(check int) (Printf.sprintf "length %d" n) n (Array.length a);
      Alcotest.(check bool)
        (Printf.sprintf "bijection of [0,%d)" n)
        true (is_permutation a);
      Alcotest.(check bool)
        (Printf.sprintf "deterministic at n=%d" n)
        true
        (a = Rewrite.permutation ~seed:42 n))
    [ 0; 1; 2; 3; 17; 64; 257 ];
  Alcotest.(check bool) "seeds decorrelate" true
    (Rewrite.permutation ~seed:1 64 <> Rewrite.permutation ~seed:2 64);
  Alcotest.(check bool) "function names decorrelate" true
    (Rewrite.derive_seed ~seed:7 "main" <> Rewrite.derive_seed ~seed:7 "helper")

(* The shuffle remaps only the shadow space: hardening two clones
   identically and shuffling one must leave every master (Original /
   Check / Shadow_copy source side) instruction's operands equal, and
   the replica defs must be a permutation of the unshuffled ones. *)
let test_shuffle_masters_untouched () =
  let harden p =
    let p = Clone.program p in
    let los =
      List.map (fun (f : Func.t) -> Array.copy f.Func.next_reg)
        p.Program.funcs
    in
    List.iter
      (fun (f : Func.t) ->
        let (_ : Transform.stats) =
          Transform.func ~replicate_stores:true ~mem_offset:65536L
            Options.default f
        in
        ())
      p.Program.funcs;
    (p, los)
  in
  let plain, los = harden (sample ()) in
  let shuffled, _ = harden (sample ()) in
  List.iter2
    (fun (f : Func.t) lo ->
      if f.Func.protect then Rewrite.permute_shadow_regs ~seed:99 ~lo f)
    shuffled.Program.funcs los;
  let rec iter3 f a b c =
    match (a, b, c) with
    | [], [], [] -> ()
    | x :: a, y :: b, z :: c -> f x y z; iter3 f a b c
    | _ -> Alcotest.fail "function lists diverge"
  in
  iter3
    (fun (pf : Func.t) (sf : Func.t) lo ->
      let originals (f : Func.t) =
        let acc = ref [] in
        Func.iter_insns f (fun _ i ->
            if i.Insn.role = Insn.Original then acc := i :: !acc);
        List.rev !acc
      in
      (* Every register defined in the shadow space (replicas and
         shadow copies alike — anything at or above the pre-hardening
         counters). *)
      let shadow_defs (f : Func.t) =
        let acc = ref [] in
        Func.iter_insns f (fun _ i ->
            Array.iter
              (fun r ->
                if Reg.idx r >= lo.(Reg.cls_index (Reg.cls r)) then
                  acc := r :: !acc)
              i.Insn.defs);
        List.sort Reg.compare !acc
      in
      List.iter2
        (fun (a : Insn.t) (b : Insn.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: master insn #%d operands unchanged"
               pf.Func.name a.Insn.id)
            true
            (a.Insn.defs = b.Insn.defs && a.Insn.uses = b.Insn.uses))
        (originals pf) (originals sf);
      (* A bijection of the shadow space: the set of shadow registers
         in use and the number of shadow definitions are preserved
         (multiplicities travel with the relabelling, the registers
         themselves do not change). *)
      let pd = shadow_defs pf and sd = shadow_defs sf in
      Alcotest.(check int)
        (pf.Func.name ^ ": shadow def count preserved")
        (List.length pd) (List.length sd);
      Alcotest.(check bool)
        (pf.Func.name ^ ": shadow register set preserved")
        true
        (List.sort_uniq Reg.compare pd = List.sort_uniq Reg.compare sd))
    plain.Program.funcs shuffled.Program.funcs los

(* ---------- the full DME pass ---------- *)

(* Deterministic in (seed, program); a different seed yields a
   different shadow assignment; the input is never modified. *)
let test_dme_deterministic () =
  let p = sample () in
  let before = Asm.print p in
  let once, _ = Dme.program Options.default p in
  let twice, _ = Dme.program Options.default p in
  let other, _ = Dme.program ~seed:1234 Options.default p in
  Alcotest.(check string) "same seed, same program" (Asm.print once)
    (Asm.print twice);
  Alcotest.(check bool) "different seed, different shuffle" true
    (Asm.print once <> Asm.print other);
  Alcotest.(check string) "input program untouched" before (Asm.print p)

(* The doubled arena: shadow_base = the original mem_size, the arena
   doubles, and the replica image starts with the mirrored seed data. *)
let test_dme_arena_layout () =
  let p = sample () in
  let d, _ = Dme.program Options.default p in
  Alcotest.(check int) "arena doubled" (2 * p.Program.mem_size)
    d.Program.mem_size;
  (match d.Program.shadow_base with
  | Some base ->
      Alcotest.(check int) "shadow_base = original mem_size"
        p.Program.mem_size base
  | None -> Alcotest.fail "DME program has no shadow_base");
  Alcotest.(check int) "data segments mirrored"
    (2 * List.length p.Program.data)
    (List.length d.Program.data)

(* End to end: the DME-hardened program still computes the golden
   output under a fault-free run, at several machine shapes. *)
let test_dme_preserves_output () =
  let p = sample () in
  let golden = out64 (run_noed p) in
  List.iter
    (fun (issue_width, delay) ->
      let r = run_scheme ~issue_width ~delay Scheme.Dme p in
      (match r.Outcome.termination with
      | Outcome.Exit 0 -> ()
      | t ->
          Alcotest.failf "DME i%d/d%d did not exit cleanly: %a" issue_width
            delay Outcome.pp_termination t);
      Alcotest.(check int64)
        (Printf.sprintf "DME i%d/d%d output" issue_width delay)
        golden (out64 r))
    [ (1, 1); (2, 2); (4, 3) ]

let suite =
  ( "dme",
    [
      case "clone is physically disjoint" test_clone_physically_disjoint;
      case "clone surgery leaves the original intact"
        test_clone_mutation_isolated;
      case "seeded permutation is a bijection" test_permutation_is_bijection;
      case "shuffle leaves masters untouched" test_shuffle_masters_untouched;
      case "pass is deterministic in (seed, program)" test_dme_deterministic;
      case "doubled arena and mirrored data" test_dme_arena_layout;
      case "fault-free DME output matches golden" test_dme_preserves_output;
    ] )
