(* Benchmark and experiment-regeneration harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (Tables I-III, Figs. 6-10 plus the headline
   summary), then runs one Bechamel micro-benchmark per table/figure
   measuring the corresponding machinery.

   Environment knobs (malformed values exit 2, never silently default):
     CASTED_TRIALS    Monte-Carlo trials per campaign (default 300, the
                      paper's count; set lower for a quick pass)
     CASTED_JOBS      worker domains for the experiment engine (default:
                      the number of cores); results are identical for
                      any value, including 1
     CASTED_SEED      campaign seed override (default 0xCA57ED)
     CASTED_FAST=1    small inputs + few trials, for smoke testing
                      (0 or unset: full run; anything else is an error)
     CASTED_SECTIONS  comma-separated subset of sections to run
     CASTED_BENCH_OUT machine-readable output path (default BENCH.json;
                      schema documented in EXPERIMENTS.md) *)

module W = Casted_workloads.Workload
module Registry = Casted_workloads.Registry
module Scheme = Casted_detect.Scheme
module Pipeline = Casted_detect.Pipeline
module Options = Casted_detect.Options
module Bug = Casted_sched.Bug
module Simulator = Casted_sim.Simulator
module Outcome = Casted_sim.Outcome
module Montecarlo = Casted_sim.Montecarlo
module Report = Casted_report
module Engine = Casted_engine.Engine
module Pool = Casted_exec.Pool
module Obs = Casted_obs

let env_failure fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("bench: " ^ msg);
      exit 2)
    fmt

(* Malformed knobs are rejected loudly: a typo in CASTED_TRIALS must not
   silently run the 300-trial default, and CASTED_FAST=yes must not
   silently run the full suite. *)
let fast =
  match Sys.getenv_opt "CASTED_FAST" with
  | None -> false
  | Some s -> (
      match String.trim s with
      | "1" -> true
      | "0" | "" -> false
      | s -> env_failure "CASTED_FAST must be 0 or 1 (got %S)" s)

let trials =
  match Sys.getenv_opt "CASTED_TRIALS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some n -> env_failure "CASTED_TRIALS must be >= 1 (got %d)" n
      | None -> env_failure "CASTED_TRIALS must be an integer (got %S)" s)
  | None -> if fast then 40 else 300

let seed =
  match Sys.getenv_opt "CASTED_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> env_failure "CASTED_SEED must be an integer (got %S)" s)
  | None -> 0xCA57ED

let jobs =
  match Pool.default_jobs () with
  | Ok n -> n
  | Error msg -> env_failure "%s" msg

let engine = Engine.create ~jobs ()

let perf_size = if fast then W.Fault else W.Perf

let all_sections =
  [
    "table1"; "table2"; "table3"; "fig6_7"; "fig8"; "fig9"; "fig10";
    "ablations"; "placement"; "recovery"; "recovery_overhead";
    "dme_coverage"; "cse_on_hardened"; "selective"; "sim_throughput";
    "store"; "microbench";
  ]

let sections =
  match Sys.getenv_opt "CASTED_SECTIONS" with
  | Some s ->
      let names =
        List.filter
          (fun n -> n <> "")
          (List.map String.trim (String.split_on_char ',' s))
      in
      List.iter
        (fun n ->
          if not (List.mem n all_sections) then
            env_failure "CASTED_SECTIONS: unknown section %S (use %s)" n
              (String.concat ", " all_sections))
        names;
      names
  | None -> []

let enabled name = sections = [] || List.mem name sections

let bench_out =
  match Sys.getenv_opt "CASTED_BENCH_OUT" with
  | Some "" -> env_failure "CASTED_BENCH_OUT must be a path (got \"\")"
  | Some p -> p
  | None -> "BENCH.json"

let banner name =
  Printf.printf "\n================ %s ================\n%!" name

(* Machine-readable results accumulated while the sections run and
   written to [bench_out] at the end (schema in EXPERIMENTS.md). *)
let section_times : (string * float) list ref = ref []
let headline : Report.Perf_sweep.summary option ref = ref None

(* The perf sweep feeds both Figs. 6-7 and Fig. 8, so share it. *)
let sweep =
  lazy
    (let t0 = Unix.gettimeofday () in
     let s = Report.Perf_sweep.run ~engine ~size:perf_size () in
     Printf.printf "(sweep: %d simulations on %d jobs in %.1fs)\n%!"
       (List.length s.Report.Perf_sweep.points)
       (Engine.jobs engine)
       (Unix.gettimeofday () -. t0);
     s)

let section_table1 () =
  banner "Table I: processor configuration";
  print_string
    (Report.Static_tables.table1
       (Casted_machine.Config.dual_core ~issue_width:2 ~delay:2))

let section_table2 () =
  banner "Table II: benchmarks";
  print_string (Report.Static_tables.table2 ())

let section_table3 () =
  banner "Table III: compiler-based error-detection schemes";
  print_string (Report.Static_tables.table3 ())

let section_fig6_7 () =
  banner "Figs. 6-7: slowdown vs NOED (issue 1-4 x delay 1-4)";
  let s = Lazy.force sweep in
  print_string (Report.Perf_sweep.render_all s);
  banner "Headline (paper SS IV-B / VI)";
  let summary = Report.Perf_sweep.summarize s in
  headline := Some summary;
  print_string (Report.Perf_sweep.render_summary summary)

let section_fig8 () =
  banner "Fig. 8: ILP scaling (speedup vs issue 1, delay 1)";
  print_string (Report.Scaling.render_all (Lazy.force sweep))

let section_fig9 () =
  banner
    (Printf.sprintf "Fig. 9: fault coverage, issue 2 delay 2 (%d trials)"
       trials);
  let rows = Report.Coverage.fig9 ~engine ~seed ~trials () in
  print_string (Report.Coverage.render rows)

let section_fig10 () =
  banner
    (Printf.sprintf
       "Fig. 10: h263dec fault coverage across configurations (%d trials)"
       trials);
  let rows =
    Report.Coverage.fig10 ~engine ~seed ~trials ~benchmark:"h263dec" ()
  in
  print_string (Report.Coverage.render rows)

(* Ablations of the design decisions called out in DESIGN.md SS5. *)

let compile_cycles ?options ?bug_options program ~scheme ~issue ~delay =
  let c =
    Pipeline.compile ?options ?bug_options ~scheme ~issue_width:issue ~delay
      program
  in
  (Simulator.run c.Pipeline.schedule).Outcome.cycles

let section_ablations () =
  banner "Ablation: BUG tie-breaking (CASTED cycles, cjpeg)";
  let w = Option.get (Registry.find "cjpeg") in
  let program = w.W.build W.Fault in
  Report.Table.print
    ~headers:[ "issue"; "delay"; "prefer-lower"; "prefer-critical-pred" ]
    (List.concat_map
       (fun issue ->
         List.map
           (fun delay ->
             let lower =
               compile_cycles program ~scheme:Scheme.Casted ~issue ~delay
                 ~bug_options:{ Bug.tie_break = Bug.Prefer_lower }
             in
             let crit =
               compile_cycles program ~scheme:Scheme.Casted ~issue ~delay
                 ~bug_options:{ Bug.tie_break = Bug.Prefer_critical_pred }
             in
             [
               string_of_int issue; string_of_int delay;
               string_of_int lower; string_of_int crit;
             ])
           [ 1; 4 ])
       [ 1; 2; 4 ]);
  banner "Ablation: store-operand checks (cjpeg, issue 2 delay 2)";
  let with_checks =
    compile_cycles program ~scheme:Scheme.Sced ~issue:2 ~delay:2
  in
  let without =
    compile_cycles program ~scheme:Scheme.Sced ~issue:2 ~delay:2
      ~options:{ Options.default with Options.check_stores = false }
  in
  Printf.printf
    "SCED with store checks: %d cycles; without: %d cycles (%.1f%% of \
     execution)\n"
    with_checks without
    (100.0 *. float_of_int (with_checks - without) /. float_of_int with_checks);
  banner "Ablation: perfect cache (181.mcf, issue 2 delay 2)";
  let w = Option.get (Registry.find "181.mcf") in
  let program = w.W.build W.Fault in
  List.iter
    (fun scheme ->
      let c = Pipeline.compile ~scheme ~issue_width:2 ~delay:2 program in
      let real = Simulator.run c.Pipeline.schedule in
      let ideal = Simulator.run ~perfect_cache:true c.Pipeline.schedule in
      Printf.printf "%-7s real cache %6d cycles, perfect L1 %6d cycles\n"
        (Scheme.name scheme) real.Outcome.cycles ideal.Outcome.cycles)
    Scheme.all

let section_placement () =
  banner "Placement: where does the code go? (SS IV-B6, adaptivity)";
  print_string
    (Report.Utilization.placement_table ~benchmark:"cjpeg" ~size:W.Fault
       ~issue_width:2 ~delays:[ 1; 2; 3; 4 ]);
  print_string
    (Report.Utilization.placement_table ~benchmark:"181.mcf" ~size:W.Fault
       ~issue_width:2 ~delays:[ 1; 2; 3; 4 ])

let section_recovery () =
  banner "Extension: CASTED-R (triplication + majority voting)";
  let module Recover = Casted_detect.Recover in
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let program = w.W.build W.Fault in
      let det =
        Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 program
      in
      let noed =
        Pipeline.compile ~scheme:Scheme.Noed ~issue_width:2 ~delay:2 program
      in
      let hardened, _ = Recover.program Options.default program in
      let config = Casted_machine.Config.dual_core ~issue_width:2 ~delay:2 in
      let rec_schedule =
        Casted_sched.List_scheduler.schedule_program config
          (Casted_sched.Assign.Adaptive Bug.default_options)
          hardened
      in
      let cycles s = (Simulator.run s).Outcome.cycles in
      let base = cycles noed.Pipeline.schedule in
      let det_mc = Montecarlo.run ~pool:(Engine.pool engine) ~seed ~trials:(min trials 150) det.Pipeline.schedule in
      let rec_mc = Montecarlo.run ~pool:(Engine.pool engine) ~seed ~trials:(min trials 150) rec_schedule in
      Printf.printf
        "%-10s slowdown: CASTED %.2fx, CASTED-R %.2fx | benign: %.0f%% vs %.0f%% | corrupt: %.0f%% vs %.0f%%\n"
        name
        (float_of_int (cycles det.Pipeline.schedule) /. float_of_int base)
        (float_of_int (cycles rec_schedule) /. float_of_int base)
        (Montecarlo.percent det_mc Montecarlo.Benign)
        (Montecarlo.percent rec_mc Montecarlo.Benign)
        (Montecarlo.percent det_mc Montecarlo.Data_corrupt)
        (Montecarlo.percent rec_mc Montecarlo.Data_corrupt))
    [ "cjpeg"; "h263dec" ]

(* Recovery-scheme cost/benefit through the real pipeline: runtime
   overhead, recovered fraction, residual SDC, MWTF and campaign
   throughput of CASTED (detection-only) vs the TMR and ROLLBACK
   recovery schemes, against the NOED baseline. Feeds the
   `recovery_overhead` section of BENCH.json; the recovered-fraction
   floors are checked by scripts/perf_check.py in CI. *)
let recovery_overhead_json : Obs.Json.t ref = ref Obs.Json.Null

let section_recovery_overhead () =
  banner "Recovery overhead: CASTED vs TMR vs ROLLBACK (cjpeg, issue 2 delay 2)";
  let f x = Obs.Json.Float x in
  let key scheme =
    Casted_engine.Cache.key ~workload:"cjpeg" ~size:W.Fault ~scheme
      ~issue_width:2 ~delay:2 ()
  in
  let _, noed = Engine.simulate engine (key Scheme.Noed) in
  let base = noed.Outcome.cycles in
  let n = min trials 150 in
  let one scheme =
    let t0 = Unix.gettimeofday () in
    let r = Engine.campaign engine ~seed ~trials:n (key scheme) in
    let wall = Unix.gettimeofday () -. t0 in
    let overhead =
      float_of_int r.Montecarlo.golden_cycles /. float_of_int base
    in
    let recovered = Montecarlo.recovered_fraction r in
    let sdc =
      float_of_int r.Montecarlo.corrupt
      /. float_of_int (max 1 r.Montecarlo.trials)
    in
    let tps = float_of_int r.Montecarlo.trials /. wall in
    let mwtf = Montecarlo.mwtf ~baseline_cycles:base r in
    Printf.printf
      "%-10s overhead %.2fx, recovered %5.1f%%, sdc %4.1f%%, mwtf %s, %.0f \
       trials/s\n"
      (Scheme.name scheme) overhead (100.0 *. recovered) (100.0 *. sdc)
      (if Float.is_finite mwtf then Printf.sprintf "%.1f" mwtf else "inf")
      tps;
    ( String.lowercase_ascii (Scheme.name scheme),
      Obs.Json.Obj
        [
          ("overhead", f overhead);
          ("recovered_fraction", f recovered);
          ("sdc_fraction", f sdc);
          (* JSON has no infinity: an SDC-free campaign reports null. *)
          ("mwtf", if Float.is_finite mwtf then f mwtf else Obs.Json.Null);
          ("trials_per_s", f tps);
          ("trials", Obs.Json.Int r.Montecarlo.trials);
        ] )
  in
  let rows = List.map one [ Scheme.Casted; Scheme.Tmr; Scheme.Rollback ] in
  recovery_overhead_json :=
    Obs.Json.Obj
      ([
         ("workload", Obs.Json.String "cjpeg");
         ("issue", Obs.Json.Int 2);
         ("delay", Obs.Json.Int 2);
         ("noed_cycles", Obs.Json.Int base);
       ]
      @ rows)

(* DME escape coverage: how much of the silent corruption that escapes
   CASTED's bit-identical replication under the shared-resource fault
   models (mem, xcluster) does the decorrelated multi-version scheme
   convert into detections? Feeds the `dme_coverage` section of
   BENCH.json; the mem caught-fraction floor is checked by
   scripts/perf_check.py in CI. *)
let dme_coverage_json : Obs.Json.t ref = ref Obs.Json.Null

let section_dme_coverage () =
  banner "DME escape coverage: CASTED vs DME (cjpeg, issue 2 delay 2)";
  (* The xcluster SDC pool is small (a few per hundred trials), so the
     section keeps a statistically meaningful trial count even in fast
     mode. *)
  let n = max trials 300 in
  let rows =
    Report.Coverage.dme_coverage ~engine ~seed ~trials:n ~benchmark:"cjpeg" ()
  in
  print_string (Report.Coverage.render_dme rows);
  dme_coverage_json :=
    Obs.Json.Obj
      ([
         ("workload", Obs.Json.String "cjpeg");
         ("issue", Obs.Json.Int 2);
         ("delay", Obs.Json.Int 2);
         ("trials", Obs.Json.Int n);
       ]
      @ List.map
          (fun (r : Report.Coverage.dme_escape) ->
            ( Casted_sim.Fault.model_name r.Report.Coverage.escape_model,
              Obs.Json.Obj
                [
                  ("casted_sdc", Obs.Json.Int r.Report.Coverage.casted_sdc);
                  ("dme_sdc", Obs.Json.Int r.Report.Coverage.dme_sdc);
                  ( "caught_fraction",
                    Obs.Json.Float r.Report.Coverage.caught_fraction );
                ] ))
          rows)

let section_cse_on_hardened () =
  banner "Ablation: late CSE/DCE on hardened code (SS IV-A)";
  let module Pass = Casted_opt.Pass in
  let module Transform = Casted_detect.Transform in
  let module B = Casted_ir.Builder in
  (* A straight-line kernel: block-local value numbering can only merge
     the redundant stream into the original when no loop-carried
     registers separate them, which is the regime where GCC's global
     CSE operates on real code. *)
  let program =
    let b = B.create ~name:"main" () in
    let base = B.movi b 0x100L in
    let acc = ref (B.movi b 3L) in
    for i = 0 to 15 do
      let x = B.mul b !acc !acc in
      let y = B.addi b x (Int64.of_int i) in
      acc := B.andi b y 0xFFFL;
      B.st b Casted_ir.Opcode.W8 ~value:!acc ~base 0L
    done;
    let out = B.movi b 0x40L in
    let v = B.ld b Casted_ir.Opcode.W8 base 0L in
    B.st b Casted_ir.Opcode.W8 ~value:v ~base:out 0L;
    let zero = B.movi b 0L in
    B.halt b ~code:zero ();
    Casted_ir.Program.make ~funcs:[ B.finish b ] ~entry:"main"
      ~mem_size:(1 lsl 16) ~output_base:0x40 ~output_len:8 ()
  in
  let hardened, _ = Transform.program Options.default program in
  let config = Casted_machine.Config.single_core ~issue_width:2 in
  let schedule p =
    Casted_sched.List_scheduler.schedule_program config
      Casted_sched.Assign.Single_cluster p
  in
  let measure label p =
    let s = schedule p in
    let mc = Montecarlo.run ~pool:(Engine.pool engine) ~seed ~trials:(min trials 150) s in
    Printf.printf "%-26s %6d insns, detected %5.1f%%, corrupt %5.1f%%\n" label
      (Casted_ir.Program.num_insns p)
      (Montecarlo.percent mc Montecarlo.Detected)
      (Montecarlo.percent mc Montecarlo.Data_corrupt)
  in
  measure "no late passes" hardened;
  let safe, _ = Pass.run_program ~preserve_detection:true Pass.standard hardened in
  measure "role-aware CSE/DCE" safe;
  let unsafe, _ =
    Pass.run_to_fixpoint ~preserve_detection:false ~max_rounds:50 Pass.standard
      hardened
  in
  measure "role-blind CSE/DCE" unsafe;
  print_endline
    "(role-blind value numbering merges each replica into its original, so\n\
    \ the checks become tautologies and coverage collapses to NOED levels\n\
    \ -- the reason the paper disables the late CSE/DCE, SS IV-A)"

let section_selective () =
  banner "Ablation: partial redundancy (Shoestring-style store slice)";
  let module Transform = Casted_detect.Transform in
  let selective =
    { Options.default with Options.scope = Options.Store_slice }
  in
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let program = w.W.build W.Fault in
      let measure options =
        let hardened, stats = Transform.program options program in
        let config = Casted_machine.Config.single_core ~issue_width:2 in
        let s =
          Casted_sched.List_scheduler.schedule_program config
            Casted_sched.Assign.Single_cluster hardened
        in
        let noed =
          Pipeline.compile ~scheme:Scheme.Noed ~issue_width:2 ~delay:1
            program
        in
        let base = (Simulator.run noed.Pipeline.schedule).Outcome.cycles in
        let cycles = (Simulator.run s).Outcome.cycles in
        let mc = Montecarlo.run ~pool:(Engine.pool engine) ~seed ~trials:(min trials 150) s in
        (stats, float_of_int cycles /. float_of_int base, mc)
      in
      let fstats, fslow, fmc = measure Options.default in
      let pstats, pslow, pmc = measure selective in
      Printf.printf
        "%-10s full: %4d replicas, %.2fx, detected %5.1f%%, corrupt %4.1f%%  ||  slice: %4d replicas, %.2fx, detected %5.1f%%, corrupt %4.1f%%\n"
        name fstats.Transform.replicas fslow
        (Montecarlo.percent fmc Montecarlo.Detected)
        (Montecarlo.percent fmc Montecarlo.Data_corrupt)
        pstats.Transform.replicas pslow
        (Montecarlo.percent pmc Montecarlo.Detected)
        (Montecarlo.percent pmc Montecarlo.Data_corrupt))
    [ "cjpeg"; "h263enc"; "197.parser" ]

(* Simulator throughput on the pre-decoded core and the stage-2
   closure-threaded engine: the numbers every campaign's wall-clock
   divides by. Uses a fixed trial count (not CASTED_TRIALS) so the
   figure is comparable across runs, and reports the one-off decode /
   capture / stage-2 compile costs next to the per-trial rates. Checked
   against scripts/perf_baseline.json by the CI perf-smoke job. *)
let sim_throughput_json : Obs.Json.t ref = ref Obs.Json.Null

let section_sim_throughput () =
  banner "Simulator throughput (pre-decoded core, cjpeg CASTED i2 d2)";
  (* Earlier sections leave a large live heap (engine caches full of
     compiled programs); compact so GC pressure from *their* garbage
     does not tax the per-trial rates measured here — replayed trials
     are short, so they are hit hardest. *)
  Gc.compact ();
  let f x = Obs.Json.Float x in
  let w = Option.get (Registry.find "cjpeg") in
  let program = w.W.build W.Fault in
  let compiled =
    Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 program
  in
  let sched = compiled.Pipeline.schedule in
  let decode_reps = if fast then 10 else 50 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to decode_reps do
    ignore (Casted_sim.Decode.of_schedule sched)
  done;
  let decode_s = (Unix.gettimeofday () -. t0) /. float_of_int decode_reps in
  let decoded = Casted_sim.Decode.of_schedule sched in
  let golden = Montecarlo.golden_decoded decoded in
  let golden_dyn = golden.Montecarlo.run.Outcome.dyn_insns in
  let tput_trials = if fast then 256 else 1024 in
  (* One-off capture of the golden-prefix snapshot set — a campaign
     captures (or pulls from the engine cache) exactly once, so its cost
     is reported next to decode, not folded into the per-trial rates. *)
  let t0 = Unix.gettimeofday () in
  let replay_set = Casted_sim.Replay.capture decoded in
  let capture_s = Unix.gettimeofday () -. t0 in
  (* One-off stage-2 compile of the decoded program into pre-bound
     closures — a campaign compiles (or pulls from the engine cache)
     once and every domain shares the immutable program. *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to decode_reps do
    ignore (Casted_sim.Compile.of_decoded decoded)
  done;
  let compile_s = (Unix.gettimeofday () -. t0) /. float_of_int decode_reps in
  let stage2 = Casted_sim.Compile.of_decoded decoded in
  let measure ~label ~replay ?compiled n_jobs =
    Pool.with_pool ~jobs:n_jobs (fun pool ->
        let replay_set = if replay then Some replay_set else None in
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        let r =
          Montecarlo.run_decoded ~pool ~seed ~trials:tput_trials ~replay
            ?replay_set ~compile:false ?compiled decoded
        in
        let wall = Unix.gettimeofday () -. t0 in
        assert (r.Montecarlo.trials = tput_trials);
        let tps = float_of_int tput_trials /. wall in
        let ips = float_of_int tput_trials *. float_of_int golden_dyn /. wall in
        let mean_suffix =
          match r.Montecarlo.replay with
          | Some s -> s.Montecarlo.mean_suffix
          | None -> 1.0
        in
        Printf.printf
          "%-8s jobs=%d: %d trials in %.2fs -> %.0f trials/s, %.2fM dyn \
           insns/s, mean suffix %.1f%%\n\
           %!"
          label n_jobs tput_trials wall tps (ips /. 1e6)
          (100.0 *. mean_suffix);
        ( tps,
          Obs.Json.Obj
            [
              ("jobs", Obs.Json.Int n_jobs);
              ("wall_s", f wall);
              ("trials_per_s", f tps);
              ("insns_per_s", f ips);
              ("mean_suffix_fraction", f mean_suffix);
            ] ))
  in
  Printf.printf "decode: %.3f ms per schedule (a campaign decodes once)\n%!"
    (1000.0 *. decode_s);
  Printf.printf
    "capture: %.3f ms for %d snapshots (%.1f KiB; a campaign captures once)\n%!"
    (1000.0 *. capture_s)
    (Casted_sim.Replay.count replay_set)
    (float_of_int (Casted_sim.Replay.total_bytes replay_set) /. 1024.0);
  Printf.printf
    "stage-2 compile: %.3f ms per program (a campaign compiles once)\n%!"
    (1000.0 *. compile_s);
  let tps_full1, j1 = measure ~label:"full" ~replay:false 1 in
  let _, jn = measure ~label:"full" ~replay:false jobs in
  let tps_replay1, r1 = measure ~label:"replayed" ~replay:true 1 in
  let _, rn = measure ~label:"replayed" ~replay:true jobs in
  let tps_compiled1, c1 =
    measure ~label:"compiled" ~replay:true ~compiled:stage2 1
  in
  let _, cn = measure ~label:"compiled" ~replay:true ~compiled:stage2 jobs in
  let speedup = tps_replay1 /. tps_full1 in
  let compiled_speedup = tps_compiled1 /. tps_replay1 in
  Printf.printf "replay speedup (jobs=1): %.2fx\n%!" speedup;
  Printf.printf "compiled speedup over decoded replay (jobs=1): %.2fx\n%!"
    compiled_speedup;
  sim_throughput_json :=
    Obs.Json.Obj
      [
        ("workload", Obs.Json.String "cjpeg");
        ("scheme", Obs.Json.String "CASTED");
        ("issue", Obs.Json.Int 2);
        ("delay", Obs.Json.Int 2);
        ("trials", Obs.Json.Int tput_trials);
        ("golden_dyn_insns", Obs.Json.Int golden_dyn);
        ("decode_ms", f (1000.0 *. decode_s));
        ("capture_ms", f (1000.0 *. capture_s));
        ("compile_ms", f (1000.0 *. compile_s));
        ("snapshots", Obs.Json.Int (Casted_sim.Replay.count replay_set));
        ( "snapshot_bytes",
          Obs.Json.Int (Casted_sim.Replay.total_bytes replay_set) );
        ("jobs1", j1);
        ("jobsN", jn);
        ("replay1", r1);
        ("replayN", rn);
        ("compiled1", c1);
        ("compiledN", cn);
        ("replay_speedup_jobs1", f speedup);
        ("compiled_speedup_jobs1", f compiled_speedup);
      ]

(* The persistent result store: how much a warm store actually saves.
   Fills one campaign cell cold (simulating every trial and banking the
   tally), then serves the identical request warm — the fast path every
   incremental matrix re-run rides. *)
let store_json : Obs.Json.t ref = ref Obs.Json.Null

let section_store () =
  banner "Result store (cold fill vs warm serve, cjpeg CASTED i2 d2)";
  let module Store = Casted_store.Store in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "casted-bench-store-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then rm_rf dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
  @@ fun () ->
  let store = Store.open_exn ~create:true dir in
  let store_trials = if fast then 128 else 512 in
  let spec =
    Casted_engine.Cache.key ~workload:"cjpeg" ~size:W.Fault
      ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 ()
  in
  let f x = Obs.Json.Float x in
  let timed_run label =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let sc =
      Engine.campaign_stored engine ~seed ~store ~trials:store_trials spec
    in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf "%-5s %d trials in %.3fs (%d simulated, %d served)\n%!"
      label store_trials wall sc.Engine.simulated sc.Engine.served;
    (sc, wall)
  in
  let cold, cold_s = timed_run "cold:" in
  let warm, warm_s = timed_run "warm:" in
  assert (warm.Engine.simulated = 0);
  assert (
    Montecarlo.counts warm.Engine.result = Montecarlo.counts cold.Engine.result);
  let stats = Store.stats store in
  let speedup = if warm_s > 0.0 then cold_s /. warm_s else 0.0 in
  Printf.printf
    "warm serve: %.0fx faster; %d bytes banked per cell (%d read back)\n%!"
    speedup stats.Store.bytes_written stats.Store.bytes_read;
  store_json :=
    Obs.Json.Obj
      [
        ("workload", Obs.Json.String "cjpeg");
        ("scheme", Obs.Json.String "CASTED");
        ("trials", Obs.Json.Int store_trials);
        ("cold_s", f cold_s);
        ("warm_s", f warm_s);
        ("warm_speedup", f speedup);
        ("entry_bytes", Obs.Json.Int stats.Store.bytes_written);
        ("warm_simulated", Obs.Json.Int warm.Engine.simulated);
        ("warm_served", Obs.Json.Int warm.Engine.served);
      ]

(* Bechamel micro-benchmarks: one per table/figure family, measuring the
   machinery that regenerates it. *)

let section_microbench () =
  banner "Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let open Toolkit in
  let w = Option.get (Registry.find "cjpeg") in
  let program = w.W.build W.Fault in
  let compiled =
    Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2 ~delay:2 program
  in
  let hardened, _ =
    Casted_detect.Transform.program Options.default program
  in
  let config = Casted_machine.Config.dual_core ~issue_width:2 ~delay:2 in
  let main_func = Casted_ir.Program.entry_func hardened in
  let big_block =
    List.fold_left
      (fun best b ->
        if Casted_ir.Block.num_insns b > Casted_ir.Block.num_insns best then b
        else best)
      (Casted_ir.Func.entry main_func)
      main_func.Casted_ir.Func.blocks
  in
  let latency i =
    Casted_machine.Latency.of_op config.Casted_machine.Config.latencies
      i.Casted_ir.Insn.op
  in
  let golden = Simulator.run compiled.Pipeline.schedule in
  let fuel = 10 * golden.Outcome.dyn_insns in
  let tests =
    [
      (* Table I: the simulated memory hierarchy. *)
      Test.make ~name:"table1.cache_access"
        (Staged.stage
           (let hier =
              Casted_cache.Hierarchy.create
                Casted_machine.Config.itanium2_cache
            in
            let i = ref 0 in
            fun () ->
              incr i;
              ignore
                (Casted_cache.Hierarchy.access hier
                   ~addr:(!i * 64 mod 65536)
                   ~write:false)));
      (* Figs. 6-7: the compile pipeline and the simulator. *)
      Test.make ~name:"fig6_7.compile_casted"
        (Staged.stage (fun () ->
             ignore
               (Pipeline.compile ~scheme:Scheme.Casted ~issue_width:2
                  ~delay:2 program)));
      Test.make ~name:"fig6_7.simulate"
        (Staged.stage (fun () ->
             ignore (Simulator.run compiled.Pipeline.schedule)));
      (* Fig. 8: the list scheduler + BUG on the hottest block. *)
      Test.make ~name:"fig8.schedule_block"
        (Staged.stage (fun () ->
             let dfg = Casted_sched.Dfg.build ~latency big_block in
             let assignment =
               Casted_sched.Assign.compute
                 (Casted_sched.Assign.Adaptive Bug.default_options)
                 config dfg
             in
             ignore
               (Casted_sched.List_scheduler.schedule_block config dfg
                  ~assignment ~label:"bench")));
      (* Figs. 9-10: one faulty execution. *)
      Test.make ~name:"fig9_10.faulty_run"
        (Staged.stage
           (let rng = Casted_sim.Rng.create ~seed:7 in
            let pop = Montecarlo.population_of_run golden in
            fun () ->
              let fault =
                Casted_sim.Fault.random Casted_sim.Fault.Reg_bit rng
                  ~population:pop
              in
              ignore
                (Simulator.run ~fault ~fuel compiled.Pipeline.schedule)));
      (* Algorithm 1: the detection pass alone. *)
      Test.make ~name:"alg1.transform"
        (Staged.stage (fun () ->
             ignore
               (Casted_detect.Transform.program Options.default program)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if fast then 0.25 else 1.0 in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"casted" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  Report.Table.print ~headers:[ "benchmark"; "time/run" ]
    (List.map
       (fun (name, ns) ->
         let human =
           if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; human ])
       rows)

(* BENCH.json: the machine-readable half of the harness, consumed by CI
   (uploaded as an artifact) and by the perf-trajectory tooling. Schema
   documented in EXPERIMENTS.md. *)
let write_bench_json ~total_s =
  let f x = Obs.Json.Float x in
  let summary_json =
    match !headline with
    | None -> Obs.Json.Null
    | Some (s : Report.Perf_sweep.summary) ->
        Obs.Json.Obj
          [
            ("sced_min", f s.Report.Perf_sweep.sced_min);
            ("sced_max", f s.Report.Perf_sweep.sced_max);
            ("sced_avg", f s.Report.Perf_sweep.sced_avg);
            ("dced_min", f s.Report.Perf_sweep.dced_min);
            ("dced_max", f s.Report.Perf_sweep.dced_max);
            ("dced_avg", f s.Report.Perf_sweep.dced_avg);
            ("casted_min", f s.Report.Perf_sweep.casted_min);
            ("casted_max", f s.Report.Perf_sweep.casted_max);
            ("casted_avg", f s.Report.Perf_sweep.casted_avg);
            ("best_gain_pct", f s.Report.Perf_sweep.best_gain);
            ( "best_gain_at",
              Obs.Json.String s.Report.Perf_sweep.best_gain_at );
            ("casted_vs_sced_pct", f s.Report.Perf_sweep.casted_vs_sced);
            ("casted_vs_dced_pct", f s.Report.Perf_sweep.casted_vs_dced);
          ]
  in
  let pool_stats = Pool.stats (Engine.pool engine) in
  let cache_stats = Casted_engine.Cache.stats (Engine.cache engine) in
  let engine_json =
    Obs.Json.Obj
      [
        ("jobs", Obs.Json.Int pool_stats.Pool.jobs);
        ("tasks", Obs.Json.Int pool_stats.Pool.tasks);
        ("busy_s", f pool_stats.Pool.busy_s);
        ("wall_s", f pool_stats.Pool.wall_s);
        ("utilisation", f (Pool.utilisation pool_stats));
        ("cache_entries", Obs.Json.Int cache_stats.Casted_engine.Cache.entries);
        ("cache_hits", Obs.Json.Int cache_stats.Casted_engine.Cache.hits);
        ("cache_misses", Obs.Json.Int cache_stats.Casted_engine.Cache.misses);
      ]
  in
  let doc =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Int 1);
        ("fast", Obs.Json.Bool fast);
        ("trials", Obs.Json.Int trials);
        ("seed", Obs.Json.Int seed);
        ("jobs", Obs.Json.Int jobs);
        ( "sections",
          Obs.Json.List
            (List.rev_map
               (fun (name, seconds) ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.String name); ("seconds", f seconds);
                   ])
               !section_times) );
        ("headline", summary_json);
        ("sim_throughput", !sim_throughput_json);
        ("store", !store_json);
        ("recovery_overhead", !recovery_overhead_json);
        ("dme_coverage", !dme_coverage_json);
        ("engine", engine_json);
        ("total_seconds", f total_s);
      ]
  in
  Obs.Sink.write_file ~path:bench_out (Obs.Json.to_string doc ^ "\n");
  Printf.printf "(wrote %s)\n" bench_out

let () =
  let t0 = Unix.gettimeofday () in
  let force name f =
    let s0 = Unix.gettimeofday () in
    f ();
    section_times := (name, Unix.gettimeofday () -. s0) :: !section_times
  in
  let run name f = if enabled name then force name f in
  run "table1" section_table1;
  run "table2" section_table2;
  run "table3" section_table3;
  run "fig6_7" section_fig6_7;
  run "fig8" section_fig8;
  run "fig9" section_fig9;
  run "fig10" section_fig10;
  run "ablations" section_ablations;
  run "placement" section_placement;
  run "recovery" section_recovery;
  run "recovery_overhead" section_recovery_overhead;
  run "dme_coverage" section_dme_coverage;
  run "cse_on_hardened" section_cse_on_hardened;
  run "selective" section_selective;
  run "sim_throughput" section_sim_throughput;
  run "store" section_store;
  run "microbench" section_microbench;
  (* Fast mode promises a self-contained BENCH.json even when
     CASTED_SECTIONS trims the run: perf-smoke reads [sim_throughput]
     and the trajectory tooling reads [headline], so fill both from the
     reduced fast-mode inputs rather than leaving them null. *)
  if fast then begin
    if !sim_throughput_json = Obs.Json.Null then
      force "sim_throughput" section_sim_throughput;
    if !headline = None then
      force "headline" (fun () ->
          banner "Headline (reduced fast-mode sweep)";
          let summary = Report.Perf_sweep.summarize (Lazy.force sweep) in
          headline := Some summary;
          print_string (Report.Perf_sweep.render_summary summary))
  end;
  banner "Engine utilisation";
  print_string (Engine.utilisation engine);
  let total_s = Unix.gettimeofday () -. t0 in
  write_bench_json ~total_s;
  Engine.shutdown engine;
  Printf.printf "\n(total: %.1fs)\n" total_s
